"""Process-wide metrics: counters, gauges, and timers that merge.

The registry is the accounting backbone of the observability layer
(see ``docs/observability.md`` for the metric-name catalogue). Three
properties drive the design:

1. **Cheap when on, free when off.** Instruments are plain attribute
   bumps on interned objects; a run emits a handful of them, never one
   per simulated step. :func:`disabled` swaps in a no-op registry so
   benchmarks can measure the instrumentation itself.
2. **Mergeable across processes.** A :meth:`MetricsRegistry.snapshot`
   is plain picklable data and :meth:`MetricsRegistry.merge_snapshot`
   folds it back in: counters add, timer stats combine, gauges take the
   incoming value. ``SweepRunner`` uses exactly this to aggregate
   per-worker metrics into the parent, with the invariant that the sum
   of per-worker counters equals the counters of a serial run over the
   same points.
3. **Scoped capture.** :func:`capture` installs a fresh registry for a
   ``with`` block and hands it back, so a sweep (or a test) can account
   for exactly its own work and optionally propagate it outward.

The registry is deliberately not thread-safe: the engines are
process-parallel, and within a process instruments are only touched
from the simulation thread.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "capture",
    "disabled",
    "get_registry",
    "time_block",
    "timed",
    "use_registry",
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        """Add ``by`` occurrences."""
        self.value += by


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Timer:
    """Accumulated durations: count, total, min, and max seconds."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        """Mean observed duration (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0


class _Noop:
    """Shared sink for disabled registries: every instrument no-ops."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, by: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, seconds: float) -> None:
        pass


_NOOP = _Noop()


class MetricsRegistry:
    """A named collection of counters, gauges, and timers.

    Instruments are created on first access and interned by name, so
    ``registry.counter("cache.hit")`` is stable and cheap to call from
    hot seams. A registry constructed with ``enabled=False`` hands out
    a shared no-op instrument and snapshots to empty dicts.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if new)."""
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if new)."""
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def timer(self, name: str) -> Timer:
        """The timer registered under ``name`` (created if new)."""
        if not self.enabled:
            return _NOOP  # type: ignore[return-value]
        found = self._timers.get(name)
        if found is None:
            found = self._timers[name] = Timer(name)
        return found

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (picklable, mergeable)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "timers": {
                n: {
                    "count": t.count,
                    "total": t.total,
                    "min": t.min if t.count else None,
                    "max": t.max if t.count else None,
                }
                for n, t in self._timers.items()
            },
        }

    def merge_snapshot(self, snapshot: dict) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` in: counters and timer stats add,
        gauges take the incoming value. Returns ``self``."""
        if not self.enabled or not snapshot:
            return self
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.count += stats["count"]
            timer.total += stats["total"]
            if stats["min"] is not None and stats["min"] < timer.min:
                timer.min = stats["min"]
            if stats["max"] is not None and stats["max"] > timer.max:
                timer.max = stats["max"]
        return self

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (via its snapshot)."""
        return self.merge_snapshot(other.snapshot())

    def reset(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


#: Registry stack; the top is what :func:`get_registry` hands out. The
#: bottom entry is the process-wide default that survives the process.
_STACK: list[MetricsRegistry] = [MetricsRegistry()]


def get_registry() -> MetricsRegistry:
    """The currently installed registry (process-wide by default)."""
    return _STACK[-1]


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Install ``registry`` as current for the duration of the block."""
    _STACK.append(registry)
    try:
        yield registry
    finally:
        _STACK.pop()


@contextmanager
def capture(propagate: bool = False):
    """Run the block against a fresh registry and yield it.

    With ``propagate=True`` the captured metrics are merged back into
    the previously current registry on exit, so the capture observes
    without hiding. The fresh registry inherits the parent's enabled
    flag, so :func:`disabled` regions stay silent through captures.
    """
    parent = get_registry()
    registry = MetricsRegistry(enabled=parent.enabled)
    _STACK.append(registry)
    try:
        yield registry
    finally:
        _STACK.pop()
        if propagate:
            parent.merge(registry)


@contextmanager
def disabled():
    """Turn telemetry off for the block (used by the overhead bench)."""
    _STACK.append(MetricsRegistry(enabled=False))
    try:
        yield
    finally:
        _STACK.pop()


@contextmanager
def time_block(name: str):
    """Observe the block's wall time on the current registry's timer."""
    registry = get_registry()
    start = time.perf_counter()
    try:
        yield
    finally:
        registry.timer(name).observe(time.perf_counter() - start)


def timed(name: str):
    """Decorator form of :func:`time_block`."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with time_block(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
