"""Observability: metrics registry, tracing spans, and run manifests.

The layer every engine reports through (``docs/observability.md``):

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters/gauges/timers, mergeable across worker processes.
- :mod:`repro.obs.spans` — hierarchical wall/CPU tracing spans.
- :mod:`repro.obs.manifest` — :class:`RunManifest` provenance records
  attached to simulation results, sweep reports, and CLI telemetry.
"""

from repro.obs.manifest import (
    RunManifest,
    VOLATILE_FIELDS,
    environment_info,
    git_revision,
    mask_volatile,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    capture,
    disabled,
    get_registry,
    time_block,
    timed,
    use_registry,
)
from repro.obs.spans import (
    Span,
    clear_spans,
    current_span,
    finished_spans,
    format_span_tree,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "Timer",
    "VOLATILE_FIELDS",
    "capture",
    "clear_spans",
    "current_span",
    "disabled",
    "environment_info",
    "finished_spans",
    "format_span_tree",
    "get_registry",
    "git_revision",
    "mask_volatile",
    "span",
    "time_block",
    "timed",
    "use_registry",
]
