"""Lightweight hierarchical tracing spans — no external dependencies.

A span measures one region of work (wall *and* CPU seconds) and nests:
entering ``span("point")`` inside ``span("fig4.sweep")`` attaches the
point span as a child, so a run leaves behind a tree like::

    fig4.sweep                      1.322s
      point (seed=0)                0.661s
        engine.vectorized           0.660s
      point (seed=1)                0.659s
        engine.vectorized           0.658s

Finished root spans collect into a bounded ring buffer per process
(:func:`finished_spans` / :func:`clear_spans`); worker-process spans are
not shipped back to the parent — only metrics are (see
:mod:`repro.obs.metrics`) — so span trees describe the process that
recorded them. Spans respect :func:`repro.obs.metrics.disabled`: inside
a disabled region nothing is timed or recorded.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry

__all__ = [
    "Span",
    "clear_spans",
    "current_span",
    "finished_spans",
    "format_span_tree",
    "span",
]

#: Root spans kept per process; old roots fall off the back.
MAX_FINISHED_ROOTS = 512


@dataclass
class Span:
    """One timed region of work.

    Attributes:
        name: dotted region name (e.g. ``"engine.vectorized"``).
        attributes: custom key/value annotations, settable during the
            block via the object :func:`span` yields.
        wall_seconds: elapsed wall-clock time (filled on exit).
        cpu_seconds: elapsed process CPU time (filled on exit).
        children: spans opened while this one was innermost.
    """

    name: str
    attributes: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-data tree view (JSON-serializable)."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "children": [child.to_dict() for child in self.children],
        }


_stack: list[Span] = []
_finished: deque[Span] = deque(maxlen=MAX_FINISHED_ROOTS)
_NULL_SPAN = Span("<disabled>")


@contextmanager
def span(name: str, **attributes):
    """Open a child span of the innermost open span for the block.

    Yields the :class:`Span` so the block can annotate it
    (``sp.attributes["points"] = 12``). Exceptions propagate; the span
    still records its elapsed time and lands in the tree.
    """
    if not get_registry().enabled:
        yield _NULL_SPAN
        return
    entry = Span(name=name, attributes=dict(attributes))
    _stack.append(entry)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        yield entry
    finally:
        entry.wall_seconds = time.perf_counter() - wall_start
        entry.cpu_seconds = time.process_time() - cpu_start
        _stack.pop()
        if _stack:
            _stack[-1].children.append(entry)
        else:
            _finished.append(entry)


def current_span() -> Span | None:
    """The innermost open span, or ``None`` outside any span."""
    return _stack[-1] if _stack else None


def finished_spans() -> list[Span]:
    """Completed root spans of this process, oldest first."""
    return list(_finished)


def clear_spans() -> None:
    """Forget every finished root span (open spans are unaffected)."""
    _finished.clear()


def format_span_tree(spans: list[Span] | None = None, *, indent: int = 2) -> str:
    """Human-readable rendering of span trees (CLI ``--telemetry summary``)."""
    if spans is None:
        spans = finished_spans()
    lines: list[str] = []

    def render(entry: Span, depth: int) -> None:
        attrs = ""
        if entry.attributes:
            inner = ", ".join(
                f"{k}={v}" for k, v in sorted(entry.attributes.items())
            )
            attrs = f" ({inner})"
        lines.append(
            f"{' ' * (indent * depth)}{entry.name}{attrs}  "
            f"wall={entry.wall_seconds:.4f}s cpu={entry.cpu_seconds:.4f}s"
        )
        for child in entry.children:
            render(child, depth + 1)

    for root in spans:
        render(root, 0)
    return "\n".join(lines)
