"""Run manifests: what ran, where, with which seeds and knobs.

A :class:`RunManifest` is the provenance record attached to every
:class:`~repro.lb.simulation.SimulationResult` and
:class:`~repro.exec.runner.RunReport`, and emitted by the CLI under
``--telemetry``. It pins the environment (git SHA, package and numpy
versions, platform), the experiment inputs (seeds, engine choice,
config, fault-plane settings), and the run's accounting (cache
hits/misses, degradation summary, merged metrics snapshot).

Manifests never participate in result equality — they ride along as
``field(compare=False)`` — so bit-identical parallel/serial and
cross-engine guarantees are unaffected by volatile provenance.

For golden-file regression tests, :func:`mask_volatile` replaces every
host- or timing-dependent value (timestamps, SHAs, hostnames, timer
durations, span times, gauge readings) with a fixed marker while
keeping the deterministic skeleton: counters, seeds, configs, and
structure.
"""

from __future__ import annotations

import datetime
import functools
import json
import os
import platform as _platform
import socket
import subprocess
import sys
from dataclasses import dataclass, field

import numpy as np

from repro._version import __version__

__all__ = [
    "RunManifest",
    "VOLATILE_FIELDS",
    "environment_info",
    "git_revision",
    "mask_volatile",
]

#: Manifest fields masked by :func:`mask_volatile`: anything that varies
#: across hosts, checkouts, or runs of the same experiment.
VOLATILE_FIELDS = frozenset(
    {
        "created_at",
        "git_sha",
        "hostname",
        "platform",
        "python_version",
        "numpy_version",
        "package_version",
        "wall_seconds",
    }
)

DEFAULT_MASK = "<masked>"


@functools.lru_cache(maxsize=1)
def git_revision() -> str:
    """The checkout's commit SHA, ``REPRO_GIT_SHA``, or ``"unknown"``.

    Resolution is attempted once per process: the environment variable
    wins (CI images often strip ``.git``), then ``git rev-parse`` run
    from this file's directory, then ``"unknown"`` for installed wheels.
    """
    env = os.environ.get("REPRO_GIT_SHA", "").strip()
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@functools.lru_cache(maxsize=1)
def environment_info() -> dict:
    """Host/toolchain facts shared by every manifest of this process."""
    return {
        "git_sha": git_revision(),
        "package_version": __version__,
        "python_version": sys.version.split()[0],
        "numpy_version": np.__version__,
        "platform": _platform.platform(),
        "hostname": socket.gethostname(),
    }


@dataclass(frozen=True)
class RunManifest:
    """Provenance and accounting for one run.

    Attributes:
        kind: what produced this manifest — ``"simulation"`` (one
            :func:`run_timestep_simulation` call), ``"sweep"`` (one
            :meth:`SweepRunner.run`), or ``"cli"`` (one CLI command).
        created_at: UTC ISO-8601 creation time.
        git_sha / package_version / python_version / numpy_version /
            platform / hostname: environment pins.
        seeds: every root seed the run consumed, in submission order.
        engine: resolved simulation engine (``"vectorized"`` /
            ``"reference"``), if one ran.
        backend: resolved array backend (``"numpy"`` / ``"numba"``)
            whose kernels produced the run, if a backend-dispatched
            path ran; ``None`` for the pure-Python reference engine.
        config: the run's knobs (timesteps, loads, jobs, …) as plain
            JSON-serializable data.
        cache_hits / cache_misses: result-cache accounting for the run.
        fault_config: fault-plane settings when a degraded policy ran.
        degradation: degradation summary (realized rates and win
            probabilities), when available.
        metrics: merged :meth:`MetricsRegistry.snapshot` for the run.
        wall_seconds: end-to-end wall time of the run.
    """

    kind: str
    created_at: str
    git_sha: str
    package_version: str
    python_version: str
    numpy_version: str
    platform: str
    hostname: str
    seeds: tuple[int, ...] = ()
    engine: str | None = None
    backend: str | None = None
    config: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    fault_config: dict | None = None
    degradation: dict | None = None
    metrics: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    @classmethod
    def collect(cls, kind: str, **kwargs) -> "RunManifest":
        """Build a manifest, filling environment fields automatically."""
        return cls(
            kind=kind,
            created_at=datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="microseconds"),
            **environment_info(),
            **kwargs,
        )

    def to_dict(self) -> dict:
        """JSON-serializable view (tuples become lists)."""
        return {
            "kind": self.kind,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "numpy_version": self.numpy_version,
            "platform": self.platform,
            "hostname": self.hostname,
            "seeds": [int(s) for s in self.seeds],
            "engine": self.engine,
            "backend": self.backend,
            "config": dict(self.config),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "fault_config": None
            if self.fault_config is None
            else dict(self.fault_config),
            "degradation": None
            if self.degradation is None
            else dict(self.degradation),
            "metrics": self.metrics,
            "wall_seconds": self.wall_seconds,
        }

    def to_json(self, *, indent: int = 2) -> str:
        """Pretty JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def masked(self, mask: str = DEFAULT_MASK) -> dict:
        """:meth:`to_dict` with volatile values masked (golden diffs)."""
        return mask_volatile(self.to_dict(), mask)


def _mask_metrics(metrics: dict, mask: str) -> dict:
    """Keep counters and timer counts; mask every duration and gauge."""
    masked: dict = {"counters": dict(metrics.get("counters", {}))}
    masked["gauges"] = {name: mask for name in metrics.get("gauges", {})}
    masked["timers"] = {
        name: {"count": stats["count"], "total": mask, "min": mask, "max": mask}
        for name, stats in metrics.get("timers", {}).items()
    }
    return masked


def _mask_span(entry: dict, mask: str) -> dict:
    return {
        "name": entry["name"],
        "attributes": dict(entry.get("attributes", {})),
        "wall_seconds": mask,
        "cpu_seconds": mask,
        "children": [_mask_span(c, mask) for c in entry.get("children", [])],
    }


def mask_volatile(payload: dict, mask: str = DEFAULT_MASK) -> dict:
    """Mask host- and timing-dependent values in telemetry data.

    Accepts either a bare manifest dict (:meth:`RunManifest.to_dict`)
    or a full CLI telemetry payload ``{"manifest": ..., "spans": ...}``.
    Counters, seeds, configs, and tree structure are preserved —
    exactly the deterministic parts a golden test should pin.
    """
    if "manifest" in payload or "spans" in payload:
        result = dict(payload)
        if isinstance(payload.get("manifest"), dict):
            result["manifest"] = mask_volatile(payload["manifest"], mask)
        if isinstance(payload.get("spans"), list):
            result["spans"] = [
                _mask_span(entry, mask) for entry in payload["spans"]
            ]
        return result
    result = {}
    for key, value in payload.items():
        if key in VOLATILE_FIELDS:
            result[key] = mask
        elif key == "metrics" and isinstance(value, dict):
            result[key] = _mask_metrics(value, mask)
        else:
            result[key] = value
    return result
