"""ASCII table rendering for benchmark output.

Every benchmark prints the rows/series the paper reports through these
helpers, so ``pytest benchmarks/ --benchmark-only`` output doubles as the
EXPERIMENTS.md record.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_figure"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Render an ASCII table with aligned columns."""
    if not headers:
        raise ConfigurationError("table needs headers")
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells for {len(headers)} headers"
            )
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(divider)
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_figure(figure, *, float_format: str = "{:.4f}") -> str:
    """Render a :class:`~repro.analysis.series.FigureData` as a table.

    One x column plus one column per series (x grids must match).
    """
    if not figure.series:
        raise ConfigurationError(f"figure {figure.title!r} has no series")
    base_x = figure.series[0].x
    for s in figure.series[1:]:
        if s.x != base_x:
            raise ConfigurationError(
                "figure series have mismatched x grids; print separately"
            )
    headers = [figure.x_label] + [s.name for s in figure.series]
    rows = []
    for i, x in enumerate(base_x):
        rows.append([x] + [s.y[i] for s in figure.series])
    return format_table(
        headers,
        rows,
        title=f"{figure.title}  (y = {figure.y_label})",
        float_format=float_format,
    )
