"""Statistics, series containers, and table formatting for experiments."""

from repro.analysis.series import FigureData, Series
from repro.analysis.stats import (
    OnlineStats,
    bootstrap_mean_ci,
    jain_fairness,
    mean_confidence_interval,
)
from repro.analysis.sweep import (
    SeededResult,
    compare_seeded,
    compare_seeded_detailed,
    run_seeded,
    run_seeded_detailed,
)
from repro.analysis.tables import format_figure, format_table

__all__ = [
    "FigureData",
    "Series",
    "OnlineStats",
    "bootstrap_mean_ci",
    "jain_fairness",
    "mean_confidence_interval",
    "format_figure",
    "format_table",
    "SeededResult",
    "compare_seeded",
    "compare_seeded_detailed",
    "run_seeded",
    "run_seeded_detailed",
]
