"""Generic seeded parameter sweeps with confidence intervals.

Single-seed comparisons can mistake noise for effects; this runner
repeats every configuration across seeds and reports mean ± CI, which
the significance benchmark uses to show the Fig 4 knee shift is real.

Execution is delegated to :class:`repro.exec.SweepRunner`, so seeds can
fan out over worker processes (``jobs``) and hit the on-disk result
cache (``cache``) — with results bit-identical to a serial run. The
default ``jobs=1`` keeps the historical serial behavior for existing
callers.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.analysis.stats import mean_confidence_interval
from repro.errors import ConfigurationError
from repro.exec import RunReport, SweepRunner

__all__ = [
    "SeededResult",
    "run_seeded",
    "run_seeded_detailed",
    "compare_seeded",
    "compare_seeded_detailed",
]


@dataclass(frozen=True)
class SeededResult:
    """Aggregate of one configuration across seeds.

    Attributes:
        label: configuration name.
        mean / low / high: mean and CI bounds of the metric.
        samples: per-seed metric values.
    """

    label: str
    mean: float
    low: float
    high: float
    samples: tuple[float, ...]

    def overlaps(self, other: "SeededResult") -> bool:
        """Do the two confidence intervals overlap?"""
        return not (self.high < other.low or other.high < self.low)


class _MetricPoint:
    """Adapter giving a ``metric(seed)`` callable the runner's
    ``fn(config, seed)`` shape while keeping the metric out of the
    (pickled) configs."""

    def __init__(self, metric: Callable[[int], float]) -> None:
        self.metric = metric

    def __call__(self, config, seed: int) -> float:
        return float(self.metric(seed))


def run_seeded_detailed(
    label: str,
    metric: Callable[[int], float],
    seeds: Sequence[int],
    *,
    z: float = 1.96,
    jobs: int | None = 1,
    cache=False,
    cache_dir=None,
    progress=None,
) -> tuple[SeededResult, RunReport]:
    """Like :func:`run_seeded`, also returning the execution report."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    runner = SweepRunner(
        _MetricPoint(metric),
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        label=label,
        progress=progress,
    )
    report = runner.run([({"label": label}, int(seed)) for seed in seeds])
    samples = [float(point.value) for point in report.points]
    mean, low, high = mean_confidence_interval(samples, z=z)
    result = SeededResult(
        label=label, mean=mean, low=low, high=high, samples=tuple(samples)
    )
    return result, report


def run_seeded(
    label: str,
    metric: Callable[[int], float],
    seeds: Sequence[int],
    *,
    z: float = 1.96,
    jobs: int | None = 1,
    cache=False,
    cache_dir=None,
    progress=None,
) -> SeededResult:
    """Evaluate ``metric(seed)`` across seeds and aggregate."""
    result, _ = run_seeded_detailed(
        label,
        metric,
        seeds,
        z=z,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        progress=progress,
    )
    return result


def compare_seeded_detailed(
    metrics: Mapping[str, Callable[[int], float]],
    seeds: Sequence[int],
    *,
    z: float = 1.96,
    jobs: int | None = 1,
    cache=False,
    cache_dir=None,
    progress=None,
) -> tuple[dict[str, SeededResult], dict[str, RunReport]]:
    """Like :func:`compare_seeded`, also returning per-label reports."""
    if not metrics:
        raise ConfigurationError("need at least one metric")
    results: dict[str, SeededResult] = {}
    reports: dict[str, RunReport] = {}
    for label, metric in metrics.items():
        results[label], reports[label] = run_seeded_detailed(
            label,
            metric,
            seeds,
            z=z,
            jobs=jobs,
            cache=cache,
            cache_dir=cache_dir,
            progress=progress,
        )
    return results, reports


def compare_seeded(
    metrics: Mapping[str, Callable[[int], float]],
    seeds: Sequence[int],
    *,
    z: float = 1.96,
    jobs: int | None = 1,
    cache=False,
    cache_dir=None,
    progress=None,
) -> dict[str, SeededResult]:
    """Run several labeled metrics over the same seeds."""
    results, _ = compare_seeded_detailed(
        metrics,
        seeds,
        z=z,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        progress=progress,
    )
    return results
