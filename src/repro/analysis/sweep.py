"""Generic seeded parameter sweeps with confidence intervals.

Single-seed comparisons can mistake noise for effects; this runner
repeats every configuration across seeds and reports mean ± CI, which
the significance benchmark uses to show the Fig 4 knee shift is real.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.analysis.stats import mean_confidence_interval
from repro.errors import ConfigurationError

__all__ = ["SeededResult", "run_seeded", "compare_seeded"]


@dataclass(frozen=True)
class SeededResult:
    """Aggregate of one configuration across seeds.

    Attributes:
        label: configuration name.
        mean / low / high: mean and CI bounds of the metric.
        samples: per-seed metric values.
    """

    label: str
    mean: float
    low: float
    high: float
    samples: tuple[float, ...]

    def overlaps(self, other: "SeededResult") -> bool:
        """Do the two confidence intervals overlap?"""
        return not (self.high < other.low or other.high < self.low)


def run_seeded(
    label: str,
    metric: Callable[[int], float],
    seeds: Sequence[int],
    *,
    z: float = 1.96,
) -> SeededResult:
    """Evaluate ``metric(seed)`` across seeds and aggregate."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    samples = [float(metric(seed)) for seed in seeds]
    mean, low, high = mean_confidence_interval(samples, z=z)
    return SeededResult(
        label=label, mean=mean, low=low, high=high, samples=tuple(samples)
    )


def compare_seeded(
    metrics: Mapping[str, Callable[[int], float]],
    seeds: Sequence[int],
    *,
    z: float = 1.96,
) -> dict[str, SeededResult]:
    """Run several labeled metrics over the same seeds."""
    if not metrics:
        raise ConfigurationError("need at least one metric")
    return {
        label: run_seeded(label, metric, seeds, z=z)
        for label, metric in metrics.items()
    }
