"""Figure-series containers: named (x, y) data with CSV export.

Benchmarks build these and print them via :mod:`repro.analysis.tables`,
so every regenerated figure has a machine-readable form.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Series", "FigureData"]


@dataclass(frozen=True)
class Series:
    """One named curve."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.name!r}: {len(self.x)} x vs {len(self.y)} y"
            )
        if not self.x:
            raise ConfigurationError(f"series {self.name!r} is empty")
        object.__setattr__(self, "x", tuple(float(v) for v in self.x))
        object.__setattr__(self, "y", tuple(float(v) for v in self.y))


@dataclass
class FigureData:
    """A named collection of series sharing an x axis meaning."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def add(self, name: str, x: Sequence[float], y: Sequence[float]) -> None:
        """Append a curve."""
        self.series.append(Series(name=name, x=tuple(x), y=tuple(y)))

    def get(self, name: str) -> Series:
        """Look up a curve by name."""
        for s in self.series:
            if s.name == name:
                return s
        raise ConfigurationError(f"no series named {name!r} in {self.title!r}")

    def to_csv(self) -> str:
        """Long-format CSV: ``series,x,y`` rows."""
        out = io.StringIO()
        out.write("series,x,y\n")
        for s in self.series:
            for x, y in zip(s.x, s.y):
                out.write(f"{s.name},{x},{y}\n")
        return out.getvalue()
