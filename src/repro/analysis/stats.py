"""Statistics helpers: online accumulation, CIs, bootstrap."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "OnlineStats",
    "mean_confidence_interval",
    "bootstrap_mean_ci",
    "jain_fairness",
]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even allocation; ``1/n`` means one participant
    holds everything. Used to quantify per-server load balance.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("empty sample")
    if (arr < 0).any():
        raise ConfigurationError("fairness is defined for non-negative loads")
    square_sum = float((arr ** 2).sum())
    if square_sum == 0.0:
        return 1.0  # nobody has anything: trivially fair
    return float(arr.sum() ** 2 / (arr.size * square_sum))


class OnlineStats:
    """Welford's online mean/variance accumulator."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def count(self) -> int:
        """Samples seen."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 before any samples)."""
        return self._mean

    def push(self, value: float) -> None:
        """Add one sample."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Sequence[float]) -> None:
        """Add many samples."""
        for v in values:
            self.push(v)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Fold another accumulator into this one (Chan et al.'s
        parallel combination), so per-worker accumulators combine into
        the same count/mean/variance a single accumulator would hold.
        Returns ``self`` for chaining."""
        if other._count == 0:
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            return self
        total = self._count + other._count
        delta = other._mean - self._mean
        self._mean += delta * other._count / total
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._count = total
        return self

    def variance(self) -> float:
        """Unbiased sample variance; needs at least two samples."""
        if self._count < 2:
            raise ConfigurationError("variance needs at least two samples")
        return self._m2 / (self._count - 1)

    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance())

    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std() / math.sqrt(self._count)


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float, float]:
    """Return ``(mean, low, high)`` with a normal-approximation CI."""
    if not len(values):
        raise ConfigurationError("empty sample")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    if len(arr) == 1:
        return mean, mean, mean
    half = z * float(arr.std(ddof=1)) / math.sqrt(len(arr))
    return mean, mean - half, mean + half


def bootstrap_mean_ci(
    values: Sequence[float],
    rng: np.random.Generator,
    *,
    resamples: int = 2000,
    confidence: float = 0.95,
) -> tuple[float, float, float]:
    """Percentile-bootstrap CI for the mean: ``(mean, low, high)``."""
    if not len(values):
        raise ConfigurationError("empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence {confidence} outside (0, 1)")
    arr = np.asarray(values, dtype=float)
    means = rng.choice(arr, size=(resamples, len(arr)), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(arr.mean()), float(low), float(high)
