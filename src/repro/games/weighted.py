"""Value-weighted colocation games.

The queueing experiments (see the classical-frontier extension bench)
show that winning different input pairs of the colocation game is worth
different amounts: colocating a CC pair saves a whole service slot,
while separating an EE pair only avoids imbalance. A *weighted* XOR game
captures this: each input pair carries a utility, and the objective is
expected utility rather than win probability.

Mathematically a weighted XOR game is just an XOR game whose referee
distribution is reweighted by utility (and renormalized), so the whole
Tsirelson machinery applies. This module builds those games and locates
the utility regimes where entanglement still pays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.games.quantum_value import XORValue, xor_quantum_value
from repro.games.xor import XORGame

__all__ = [
    "weighted_colocation_game",
    "weighted_values",
    "advantage_boundary_cc_weight",
]


def weighted_colocation_game(
    p_colocate: float = 0.5,
    *,
    cc_weight: float = 1.0,
    ce_weight: float = 1.0,
    ee_weight: float = 1.0,
) -> XORGame:
    """The colocation game with per-input-pair utilities.

    ``cc_weight`` scales the both-type-C case (colocation payoff),
    ``ce_weight`` the mixed cases, ``ee_weight`` the both-type-E case.
    Weights must be non-negative with a positive total. The returned
    game's value is expected utility normalized to [0, 1].
    """
    if not 0.0 < p_colocate < 1.0:
        raise GameError(f"p_colocate {p_colocate} outside (0, 1)")
    for name, w in (
        ("cc_weight", cc_weight),
        ("ce_weight", ce_weight),
        ("ee_weight", ee_weight),
    ):
        if w < 0:
            raise GameError(f"{name} must be non-negative, got {w}")
    p = p_colocate
    frequencies = np.array(
        [[(1 - p) ** 2, (1 - p) * p], [p * (1 - p), p * p]]
    )
    weights = np.array([[ee_weight, ce_weight], [ce_weight, cc_weight]])
    mass = frequencies * weights
    total = mass.sum()
    if total <= 0:
        raise GameError("at least one weight must be positive")
    targets = np.array([[1, 1], [1, 0]])  # colocate only the CC pair
    return XORGame(
        name=(
            f"colocation-weighted(p={p_colocate:.2f},"
            f"cc={cc_weight:.2f},ee={ee_weight:.2f})"
        ),
        distribution=mass / total,
        targets=targets,
    )


def weighted_values(
    p_colocate: float = 0.5,
    *,
    cc_weight: float = 1.0,
    ce_weight: float = 1.0,
    ee_weight: float = 1.0,
) -> XORValue:
    """Classical and quantum expected-utility values (normalized)."""
    game = weighted_colocation_game(
        p_colocate,
        cc_weight=cc_weight,
        ce_weight=ce_weight,
        ee_weight=ee_weight,
    )
    return xor_quantum_value(game)


def advantage_boundary_cc_weight(
    p_colocate: float = 0.5,
    *,
    threshold: float = 1e-4,
    lo: float = 1.0,
    hi: float = 64.0,
    iterations: int = 30,
) -> float:
    """The CC utility multiplier beyond which the quantum advantage dies.

    As ``cc_weight`` grows, the deterministic colocate-same-type strategy
    (which wins the CC case with certainty) approaches optimality and the
    quantum advantage shrinks to zero. Bisects for the boundary; returns
    ``hi`` if the advantage survives the whole range.
    """
    def advantage(cc: float) -> float:
        return weighted_values(p_colocate, cc_weight=cc).advantage

    if advantage(lo) <= threshold:
        return lo
    if advantage(hi) > threshold:
        return hi
    low, high = lo, hi
    for _ in range(iterations):
        mid = (low + high) / 2.0
        if advantage(mid) > threshold:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0
