"""NPA level-1 upper bounds on quantum values of binary-output games.

The Navascues-Pironio-Acin hierarchy relaxes the set of quantum
correlations; at level 1 the moment matrix is indexed by
``{1, A_0.., B_0..}`` for ±1 observables. Any quantum strategy induces a
PSD moment matrix with unit diagonal, so maximizing the (linear) win
probability over such matrices upper-bounds the quantum value.

The paper's §4.2 conjectures that ECMP-style collision games admit *no*
quantum advantage; :mod:`repro.ecmp.search` uses this bound from above
and a see-saw optimizer from below to squeeze the quantum value against
the classical one.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.games.base import TwoPlayerGame
from repro.sdp import SDPResult, solve_diagonal_sdp

__all__ = ["npa1_upper_bound", "npa1_cost"]


def npa1_cost(game: TwoPlayerGame) -> tuple[np.ndarray, float]:
    """Cost matrix and constant so the NPA-1 objective is
    ``<C, Gamma> + const``.

    For binary outputs, ``p(a, b | x, y)`` expands in the moments as
    ``(1 + (-1)^a <A_x> + (-1)^b <B_y> + (-1)^(a+b) <A_x B_y>) / 4``; the
    moment matrix row 0 holds the marginals and the A-B block holds the
    correlators.
    """
    if game.num_outputs_a != 2 or game.num_outputs_b != 2:
        raise GameError("NPA-1 bound implemented for binary outputs only")
    nx, ny = game.num_inputs_a, game.num_inputs_b
    size = 1 + nx + ny
    cost = np.zeros((size, size))
    constant = 0.0
    for x in range(nx):
        for y in range(ny):
            weight = game.distribution[x, y]
            if weight == 0.0:
                continue
            for a in (0, 1):
                for b in (0, 1):
                    if not game.predicate(x, y, a, b):
                        continue
                    coeff = weight / 4.0
                    constant += coeff
                    sign_a = 1.0 if a == 0 else -1.0
                    sign_b = 1.0 if b == 0 else -1.0
                    # Marginal terms live in row/column 0; each symmetric
                    # pair is visited twice by <C, Gamma>, so halve.
                    cost[0, 1 + x] += coeff * sign_a / 2.0
                    cost[1 + x, 0] += coeff * sign_a / 2.0
                    cost[0, 1 + nx + y] += coeff * sign_b / 2.0
                    cost[1 + nx + y, 0] += coeff * sign_b / 2.0
                    cost[1 + x, 1 + nx + y] += coeff * sign_a * sign_b / 2.0
                    cost[1 + nx + y, 1 + x] += coeff * sign_a * sign_b / 2.0
    return cost, constant


def npa1_upper_bound(
    game: TwoPlayerGame, *, tolerance: float = 1e-8
) -> tuple[float, SDPResult]:
    """Rigorous upper bound on the quantum win probability of ``game``.

    Returns ``(bound, sdp_result)``; the bound uses the solver's repaired
    dual certificate, so it holds even before full convergence.
    """
    cost, constant = npa1_cost(game)
    result = solve_diagonal_sdp(cost, tolerance=tolerance)
    return constant + result.upper_bound, result
