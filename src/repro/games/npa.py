"""NPA upper bounds on quantum values of two-player nonlocal games.

The Navascues-Pironio-Acin hierarchy relaxes the set of quantum
correlations. Two forms live here:

* :func:`npa1_cost` / :func:`npa1_upper_bound` — the original
  binary-output level-1 relaxation in ±1-observable (correlator) form.
  Its moment matrix has unit diagonal, so it runs on
  :func:`repro.sdp.solve_diagonal_sdp` and inherits that solver's
  repaired dual certificate.
* :func:`build_npa_relaxation` / :func:`npa_upper_bound` — the general
  projector form over arbitrary finite output alphabets, at level
  ``"1"`` or level ``"1+ab"`` (the "almost quantum" set: monomial
  basis ``{1} ∪ {A_x^a} ∪ {B_y^b} ∪ {A_x^a B_y^b}``). Moment-matrix
  entries that reduce to the same canonical monomial are identified
  and orthogonal same-input projector products pinned to zero; the
  resulting partition SDP is solved by
  :func:`repro.sdp.solve_partition_sdp`, whose repaired dual bound is
  rigorous because every monomial here is a product of projectors, so
  feasible moment matrices have diagonal entries at most one.

Restricting the moment matrix to be real symmetric keeps the bound
valid: the entrywise real part of any complex Hermitian quantum moment
matrix is PSD, satisfies the same identifications, and leaves the
(real) objective unchanged.

The paper's §4.2 conjectures that ECMP-style collision games admit *no*
quantum advantage; :mod:`repro.ecmp.search` uses these bounds from
above and a see-saw optimizer from below to squeeze the quantum value
against the classical one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.games.base import TwoPlayerGame
from repro.games.nonlocal_games import NonlocalGame
from repro.obs import metrics as _metrics
from repro.obs.spans import span
from repro.sdp import SDPResult, solve_diagonal_sdp, solve_partition_sdp

__all__ = [
    "NPA_LEVELS",
    "NPARelaxation",
    "build_npa_relaxation",
    "npa1_cost",
    "npa1_upper_bound",
    "npa_upper_bound",
]

NPA_LEVELS = ("1", "1+ab")


def npa1_cost(game: TwoPlayerGame) -> tuple[np.ndarray, float]:
    """Cost matrix and constant so the NPA-1 objective is
    ``<C, Gamma> + const``.

    For binary outputs, ``p(a, b | x, y)`` expands in the moments as
    ``(1 + (-1)^a <A_x> + (-1)^b <B_y> + (-1)^(a+b) <A_x B_y>) / 4``; the
    moment matrix row 0 holds the marginals and the A-B block holds the
    correlators.
    """
    if game.num_outputs_a != 2 or game.num_outputs_b != 2:
        raise GameError("NPA-1 bound implemented for binary outputs only")
    nx, ny = game.num_inputs_a, game.num_inputs_b
    size = 1 + nx + ny
    cost = np.zeros((size, size))
    constant = 0.0
    for x in range(nx):
        for y in range(ny):
            weight = game.distribution[x, y]
            if weight == 0.0:
                continue
            for a in (0, 1):
                for b in (0, 1):
                    if not game.predicate(x, y, a, b):
                        continue
                    coeff = weight / 4.0
                    constant += coeff
                    sign_a = 1.0 if a == 0 else -1.0
                    sign_b = 1.0 if b == 0 else -1.0
                    # Marginal terms live in row/column 0; each symmetric
                    # pair is visited twice by <C, Gamma>, so halve.
                    cost[0, 1 + x] += coeff * sign_a / 2.0
                    cost[1 + x, 0] += coeff * sign_a / 2.0
                    cost[0, 1 + nx + y] += coeff * sign_b / 2.0
                    cost[1 + nx + y, 0] += coeff * sign_b / 2.0
                    cost[1 + x, 1 + nx + y] += coeff * sign_a * sign_b / 2.0
                    cost[1 + nx + y, 1 + x] += coeff * sign_a * sign_b / 2.0
    return cost, constant


def npa1_upper_bound(
    game: TwoPlayerGame, *, tolerance: float = 1e-8
) -> tuple[float, SDPResult]:
    """Rigorous upper bound on the quantum win probability of ``game``.

    Binary-output games take the original correlator-form level-1 path;
    larger alphabets route through the general projector relaxation of
    :func:`npa_upper_bound` at level ``"1"`` (both are level-1 NPA — the
    two forms are congruent, so binary games get the same bound either
    way, which the test suite checks differentially).

    Returns ``(bound, sdp_result)``; the bound uses the solver's repaired
    dual certificate, so it holds even before full convergence.
    """
    if game.num_outputs_a == 2 and game.num_outputs_b == 2:
        cost, constant = npa1_cost(game)
        result = solve_diagonal_sdp(cost, tolerance=tolerance)
        return constant + result.upper_bound, result
    return npa_upper_bound(
        NonlocalGame.from_two_player_game(game),
        level="1",
        tolerance=tolerance,
    )


# ---------------------------------------------------------------------------
# General projector-form relaxation.
# ---------------------------------------------------------------------------

# A monomial is (alice_word, bob_word); each word is a tuple of
# (input, output) projector labels. Level 1 words have length <= 1, so
# entry products have words of length <= 2 and never need reordering
# beyond the A/B split (Alice's algebra commutes with Bob's).


def _reduce_word(word: tuple[tuple[int, int], ...]):
    """Canonical form of a projector word, or ``None`` if it vanishes.

    Adjacent equal projectors collapse (idempotence); adjacent
    projectors with the same input but different outputs annihilate
    (orthogonality).
    """
    out: list[tuple[int, int]] = []
    for label in word:
        if out and out[-1] == label:
            continue
        if out and out[-1][0] == label[0]:
            return None
        out.append(label)
    return tuple(out)


def _entry_key(mono_i, mono_j):
    """Canonical monomial of ``m_i† m_j``, or ``None`` if it is zero.

    Real moment matrices satisfy ``Gamma[i, j] = Re<m_i† m_j>`` and
    ``Re<W> = Re<W†>``, so a word and its reversal share a key.
    """
    alice = _reduce_word(tuple(reversed(mono_i[0])) + mono_j[0])
    if alice is None:
        return None
    bob = _reduce_word(tuple(reversed(mono_i[1])) + mono_j[1])
    if bob is None:
        return None
    key = (alice, bob)
    mirrored = (tuple(reversed(alice)), tuple(reversed(bob)))
    return min(key, mirrored)


@dataclass(frozen=True)
class NPARelaxation:
    """A general NPA moment-matrix relaxation, ready for the solver.

    Attributes:
        level: hierarchy level, one of :data:`NPA_LEVELS`.
        size: moment-matrix dimension.
        cost: symmetric cost matrix; the objective is
            ``<cost, Gamma> + constant``.
        constant: affine offset from expanding dropped outputs.
        classes: groups of upper-triangle entries identified by a
            shared canonical monomial (includes the ``Gamma[v, v] =
            Gamma[1, v]`` projector normalizations).
        zero_entries: entries whose monomial vanishes (orthogonal
            same-input projectors).
        monomials: the basis monomials, for debugging/reporting.
    """

    level: str
    size: int
    cost: np.ndarray
    constant: float
    classes: tuple[tuple[tuple[int, int], ...], ...]
    zero_entries: tuple[tuple[int, int], ...]
    monomials: tuple[tuple, ...]


def build_npa_relaxation(
    game: NonlocalGame, *, level: str = "1+ab"
) -> NPARelaxation:
    """Assemble the moment matrix structure and objective for ``game``.

    One projector per input/output pair is kept except the last output
    of each input (completeness ``sum_a A_x^a = 1`` eliminates it); the
    win probability is expanded over the surviving projectors, with
    marginal terms against row 0 and product terms in the A-B block.
    """
    if level not in NPA_LEVELS:
        raise GameError(
            f"unknown NPA level {level!r}; expected one of {NPA_LEVELS}"
        )
    nx, ny = game.num_inputs
    na, nb = game.num_outputs
    alice_singles = [
        (((x, a),), ()) for x in range(nx) for a in range(na - 1)
    ]
    bob_singles = [((), ((y, b),)) for y in range(ny) for b in range(nb - 1)]
    monomials: list[tuple] = [((), ())] + alice_singles + bob_singles
    if level == "1+ab":
        monomials += [
            (alice[0], bob[1])
            for alice in alice_singles
            for bob in bob_singles
        ]
    size = len(monomials)

    alice_index = {
        mono[0][0]: 1 + i for i, mono in enumerate(alice_singles)
    }
    bob_index = {
        mono[1][0]: 1 + len(alice_singles) + i
        for i, mono in enumerate(bob_singles)
    }

    # Objective: expand p(a, b | x, y) over the reduced projector set.
    # Dropped outputs expand via completeness, e.g. for a = na - 1 the
    # Alice factor is 1 - sum_{a' < na-1} A_x^{a'}.
    cost = np.zeros((size, size))
    constant = 0.0

    def _complement(labels):
        """Expansion of ``1 - sum(labels)`` as (sign, label-or-None)."""
        return [(1.0, None)] + [(-1.0, label) for label in labels]

    def _add(i: int, j: int, value: float) -> None:
        if i == j:
            cost[i, i] += value
        else:
            cost[i, j] += value / 2.0
            cost[j, i] += value / 2.0

    for x in range(nx):
        for y in range(ny):
            weight = float(game.prob_mat[x, y])
            if weight == 0.0:
                continue
            for a in range(na):
                alice_terms = (
                    [(1.0, (x, a))]
                    if a < na - 1
                    else _complement([(x, aa) for aa in range(na - 1)])
                )
                for b in range(nb):
                    coeff = weight * float(game.pred_mat[a, b, x, y])
                    if coeff == 0.0:
                        continue
                    bob_terms = (
                        [(1.0, (y, b))]
                        if b < nb - 1
                        else _complement([(y, bb) for bb in range(nb - 1)])
                    )
                    for sign_a, label_a in alice_terms:
                        for sign_b, label_b in bob_terms:
                            value = coeff * sign_a * sign_b
                            if label_a is None and label_b is None:
                                constant += value
                            elif label_b is None:
                                _add(0, alice_index[label_a], value)
                            elif label_a is None:
                                _add(0, bob_index[label_b], value)
                            else:
                                _add(
                                    alice_index[label_a],
                                    bob_index[label_b],
                                    value,
                                )

    # Entry identifications: group upper-triangle entries by the
    # canonical monomial of m_i† m_j. The corner (0, 0) is the lone
    # identity moment and stays pinned by the solver instead.
    class_map: dict[tuple, list[tuple[int, int]]] = {}
    zero_entries: list[tuple[int, int]] = []
    for i in range(size):
        for j in range(i, size):
            if i == 0 and j == 0:
                continue
            key = _entry_key(monomials[i], monomials[j])
            if key is None:
                zero_entries.append((i, j))
            else:
                class_map.setdefault(key, []).append((i, j))
    classes = tuple(
        tuple(entries) for entries in class_map.values() if len(entries) > 1
    )
    return NPARelaxation(
        level=level,
        size=size,
        cost=cost,
        constant=constant,
        classes=classes,
        zero_entries=tuple(zero_entries),
        monomials=tuple(monomials),
    )


def npa_upper_bound(
    game: NonlocalGame | TwoPlayerGame,
    *,
    level: str = "1+ab",
    tolerance: float = 1e-8,
    max_iterations: int = 20_000,
) -> tuple[float, SDPResult]:
    """Rigorous NPA upper bound on the quantum value of any two-player
    game with finite alphabets.

    Level ``"1+ab"`` (default) is the "almost quantum" relaxation —
    never weaker than level ``"1"``. The bound combines the partition
    solver's repaired dual certificate with the relaxation constant,
    so it is a true upper bound on the quantum win probability even
    when the ADMM stops early.

    Returns ``(bound, sdp_result)``.
    """
    if not isinstance(game, NonlocalGame):
        game = NonlocalGame.from_two_player_game(game)
    relaxation = build_npa_relaxation(game, level=level)
    registry = _metrics.get_registry()
    registry.counter("npa.solves").inc()
    registry.counter("npa.moment_entries").inc(relaxation.size**2)
    with span(
        "npa.solve",
        game=game.name,
        level=level,
        size=relaxation.size,
    ):
        result = solve_partition_sdp(
            relaxation.cost,
            relaxation.classes,
            relaxation.zero_entries,
            tolerance=tolerance,
            max_iterations=max_iterations,
        )
    return relaxation.constant + result.upper_bound, result
