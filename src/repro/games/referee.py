"""Monte-Carlo referee: play games end-to-end against the simulator.

The exact values in :mod:`repro.games.quantum_value` verify strategies
analytically; the referee instead *runs* them — sampling inputs, letting
each strategy measure simulated qubits, and scoring wins — which is what
the integration tests and examples use to show the whole pipeline works.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.errors import GameError
from repro.games.base import TwoPlayerGame
from repro.games.strategies import Strategy

__all__ = ["GameRecord", "play_rounds"]


@dataclass(frozen=True)
class GameRecord:
    """Outcome of a referee session.

    Attributes:
        rounds: number of rounds played.
        wins: rounds won.
        input_counts: observed input-pair counts, shape ``(nx, ny)``.
    """

    rounds: int
    wins: int
    input_counts: np.ndarray

    @property
    def win_rate(self) -> float:
        """Empirical win probability."""
        return self.wins / self.rounds if self.rounds else 0.0

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the win probability."""
        p = self.win_rate
        if self.rounds == 0:
            return (0.0, 1.0)
        half = z * math.sqrt(max(p * (1 - p), 1e-12) / self.rounds)
        return (max(0.0, p - half), min(1.0, p + half))


def play_rounds(
    game: TwoPlayerGame,
    strategy: Strategy,
    rounds: int,
    rng: np.random.Generator,
) -> GameRecord:
    """Play ``rounds`` independent rounds and tally wins.

    Inputs are sampled from the game's joint distribution; each round the
    strategy is executed fresh (for quantum strategies this consumes a
    fresh entangled state, matching the architecture's one-pair-per-
    decision usage).
    """
    if rounds < 1:
        raise GameError("must play at least one round")
    flat = game.distribution.reshape(-1)
    nx, ny = game.distribution.shape
    counts = np.zeros((nx, ny), dtype=int)
    wins = 0
    pair_indices = rng.choice(flat.size, size=rounds, p=flat)
    for idx in pair_indices:
        x, y = divmod(int(idx), ny)
        counts[x, y] += 1
        a, b = strategy.play(x, y, rng)
        if game.predicate(x, y, a, b):
            wins += 1
    return GameRecord(rounds=rounds, wins=wins, input_counts=counts)
