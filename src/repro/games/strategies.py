"""Strategies for playing two-player non-local games.

Three families, mirroring the paper's comparison:

- :class:`DeterministicStrategy` — fixed output tables.
- :class:`SharedRandomnessStrategy` — a convex mixture of deterministic
  strategies (classical machines that "pre-agree on a strategy and share
  randomness", §3). Provably no better than the best deterministic
  strategy, a fact the tests check.
- :class:`QuantumStrategy` — a shared entangled state plus per-input
  binary measurements for each party. Supports both single-qubit
  measurement bases (the CHSH protocol) and multi-qubit binary
  observables (the Tsirelson construction for general XOR games).

Every strategy implements ``play(x, y, rng) -> (a, b)`` and
``behavior() -> p(a, b | x, y)`` (exact, no sampling).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import StrategyError
from repro.games.base import TwoPlayerGame
from repro.quantum.bases import MeasurementBasis
from repro.quantum.linalg import expand_operator, require_hermitian
from repro.quantum.measurement import measure_with_projectors
from repro.quantum.state import DensityMatrix, StateVector

__all__ = [
    "Strategy",
    "BehaviorStrategy",
    "DeterministicStrategy",
    "SharedRandomnessStrategy",
    "QuantumStrategy",
    "BinaryObservable",
    "exact_win_probability",
]


class Strategy:
    """Interface for strategies; see module docstring."""

    def play(
        self, x: int, y: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Sample outputs for inputs ``(x, y)``."""
        raise NotImplementedError

    def behavior(self) -> np.ndarray:
        """Exact conditional distribution ``p(a, b | x, y)``,
        shape ``(nx, ny, na, nb)``."""
        raise NotImplementedError


class BehaviorStrategy(Strategy):
    """A strategy given directly by its behavior ``p(a, b | x, y)``.

    Wraps an explicit conditional-distribution table so derived
    behaviors — e.g. a quantum strategy's statistics degraded by
    detector noise (:func:`repro.hardware.qnic.apply_measurement_flips`)
    — can flow through everything that samples from ``behavior()``
    (notably the paired Fig 4 policies) without re-deriving states or
    measurements. Only no-signaling tables describe physical strategies;
    construction checks normalization, not no-signaling.
    """

    def __init__(self, behavior: np.ndarray) -> None:
        table = np.asarray(behavior, dtype=float)
        if table.ndim != 4:
            raise StrategyError(
                f"behavior must have shape (nx, ny, na, nb), got {table.shape}"
            )
        if (table < -1e-9).any():
            raise StrategyError("behavior has negative probabilities")
        sums = table.sum(axis=(2, 3))
        if not np.allclose(sums, 1.0, atol=1e-7):
            raise StrategyError(
                "behavior rows must each sum to 1 over the output pairs"
            )
        self._behavior = table.clip(min=0.0)
        self._behavior.flags.writeable = False

    def behavior(self):
        return self._behavior

    def play(self, x, y, rng):
        nx, ny, na, nb = self._behavior.shape
        if not 0 <= x < nx or not 0 <= y < ny:
            raise StrategyError(f"inputs ({x},{y}) outside behavior table")
        flat = self._behavior[x, y].ravel()
        index = int(rng.choice(flat.size, p=flat / flat.sum()))
        return divmod(index, nb)


@dataclass(frozen=True)
class DeterministicStrategy(Strategy):
    """Fixed response tables for both parties."""

    outputs_a: tuple[int, ...]
    outputs_b: tuple[int, ...]
    num_outputs_a: int = 2
    num_outputs_b: int = 2

    def __post_init__(self) -> None:
        for label, outputs, limit in (
            ("a", self.outputs_a, self.num_outputs_a),
            ("b", self.outputs_b, self.num_outputs_b),
        ):
            if not outputs:
                raise StrategyError(f"party {label} has an empty output table")
            if any(not 0 <= o < limit for o in outputs):
                raise StrategyError(
                    f"party {label} outputs {outputs!r} exceed range {limit}"
                )
        object.__setattr__(self, "outputs_a", tuple(self.outputs_a))
        object.__setattr__(self, "outputs_b", tuple(self.outputs_b))

    def play(self, x, y, rng):
        try:
            return self.outputs_a[x], self.outputs_b[y]
        except IndexError as exc:
            raise StrategyError(f"input ({x},{y}) outside table") from exc

    def behavior(self):
        nx, ny = len(self.outputs_a), len(self.outputs_b)
        out = np.zeros((nx, ny, self.num_outputs_a, self.num_outputs_b))
        for x in range(nx):
            for y in range(ny):
                out[x, y, self.outputs_a[x], self.outputs_b[y]] = 1.0
        return out


class SharedRandomnessStrategy(Strategy):
    """A public-coin mixture of deterministic strategies."""

    def __init__(
        self, parts: Sequence[tuple[float, DeterministicStrategy]]
    ) -> None:
        if not parts:
            raise StrategyError("mixture needs at least one component")
        weights = np.array([p for p, _ in parts], dtype=float)
        if (weights < 0).any() or abs(weights.sum() - 1.0) > 1e-9:
            raise StrategyError(f"weights {weights!r} are not a distribution")
        shapes = {(len(s.outputs_a), len(s.outputs_b)) for _, s in parts}
        if len(shapes) != 1:
            raise StrategyError("mixture components disagree on input sizes")
        self._weights = weights
        self._components = [s for _, s in parts]

    @property
    def components(self) -> list[DeterministicStrategy]:
        """The deterministic strategies being mixed."""
        return list(self._components)

    def play(self, x, y, rng):
        idx = int(rng.choice(len(self._components), p=self._weights))
        return self._components[idx].play(x, y, rng)

    def behavior(self):
        out = self._weights[0] * self._components[0].behavior()
        for w, comp in zip(self._weights[1:], self._components[1:]):
            out = out + w * comp.behavior()
        return out


@dataclass(frozen=True)
class BinaryObservable:
    """A two-outcome measurement given as a Hermitian ``O`` with ``O^2 = I``.

    Outcome 0 corresponds to the +1 eigenspace, outcome 1 to the -1
    eigenspace (the XOR-game sign convention ``(-1)^a``).
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        mat = np.asarray(self.matrix, dtype=np.complex128)
        require_hermitian(mat)
        if not np.allclose(mat @ mat, np.eye(mat.shape[0]), atol=1e-7):
            raise StrategyError("binary observable must square to identity")
        mat.flags.writeable = False
        object.__setattr__(self, "matrix", mat)

    @property
    def dim(self) -> int:
        """Dimension the observable acts on."""
        return self.matrix.shape[0]

    def projectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Projectors onto the +1 and -1 eigenspaces (outcomes 0 and 1)."""
        eye = np.eye(self.dim)
        return (eye + self.matrix) / 2.0, (eye - self.matrix) / 2.0

    @classmethod
    def from_basis(cls, basis: MeasurementBasis) -> "BinaryObservable":
        """Observable whose outcomes match a two-outcome basis."""
        if basis.num_outcomes != 2:
            raise StrategyError("basis must have exactly two outcomes")
        p0, p1 = basis.projectors()
        return cls(p0 - p1)


class QuantumStrategy(Strategy):
    """Shared entangled state + per-input binary observables per party.

    The state's first ``alice_qubits`` qubits belong to Alice; the rest to
    Bob. Measurements are given as :class:`BinaryObservable` (or
    :class:`MeasurementBasis` with two outcomes, which is converted).
    """

    def __init__(
        self,
        state: StateVector | DensityMatrix,
        alice: Sequence[BinaryObservable | MeasurementBasis],
        bob: Sequence[BinaryObservable | MeasurementBasis],
        *,
        alice_qubits: int | None = None,
    ) -> None:
        if isinstance(state, StateVector):
            state = state.to_density_matrix()
        self._state = state
        self._alice = [self._coerce(m) for m in alice]
        self._bob = [self._coerce(m) for m in bob]
        if not self._alice or not self._bob:
            raise StrategyError("both parties need at least one measurement")
        dims_a = {m.dim for m in self._alice}
        dims_b = {m.dim for m in self._bob}
        if len(dims_a) != 1 or len(dims_b) != 1:
            raise StrategyError("per-party observables must share a dimension")
        n_a = (dims_a.pop()).bit_length() - 1
        n_b = (dims_b.pop()).bit_length() - 1
        if alice_qubits is not None and alice_qubits != n_a:
            raise StrategyError(
                f"alice_qubits={alice_qubits} but observables act on {n_a}"
            )
        if n_a + n_b != state.num_qubits:
            raise StrategyError(
                f"state has {state.num_qubits} qubits but observables cover "
                f"{n_a}+{n_b}"
            )
        self._alice_qubits = n_a
        self._bob_qubits = n_b
        # Cache expanded projectors per input for play() and behavior().
        n = state.num_qubits
        self._proj_a = [
            tuple(
                expand_operator(p, list(range(n_a)), n)
                for p in obs.projectors()
            )
            for obs in self._alice
        ]
        self._proj_b = [
            tuple(
                expand_operator(p, list(range(n_a, n)), n)
                for p in obs.projectors()
            )
            for obs in self._bob
        ]

    @staticmethod
    def _coerce(
        measurement: BinaryObservable | MeasurementBasis,
    ) -> BinaryObservable:
        if isinstance(measurement, MeasurementBasis):
            return BinaryObservable.from_basis(measurement)
        if isinstance(measurement, BinaryObservable):
            return measurement
        raise StrategyError(
            f"unsupported measurement type {type(measurement).__name__}"
        )

    @property
    def state(self) -> DensityMatrix:
        """The shared state."""
        return self._state

    @property
    def num_inputs(self) -> tuple[int, int]:
        """Input alphabet sizes ``(nx, ny)``."""
        return len(self._alice), len(self._bob)

    def correlation(self, x: int, y: int) -> float:
        """``<A_x (x) B_y>`` under the shared state."""
        pa0, pa1 = self._proj_a[x]
        pb0, pb1 = self._proj_b[y]
        obs = (pa0 - pa1) @ (pb0 - pb1)
        return float(np.real(np.trace(self._state.matrix @ obs)))

    def joint_distribution(self, x: int, y: int) -> np.ndarray:
        """Exact ``p(a, b | x, y)`` as a 2x2 array."""
        out = np.zeros((2, 2))
        mat = self._state.matrix
        for a, pa in enumerate(self._proj_a[x]):
            for b, pb in enumerate(self._proj_b[y]):
                out[a, b] = float(np.real(np.trace(mat @ (pa @ pb))))
        out = out.clip(min=0.0)
        return out / out.sum()

    def behavior(self):
        nx, ny = self.num_inputs
        out = np.zeros((nx, ny, 2, 2))
        for x in range(nx):
            for y in range(ny):
                out[x, y] = self.joint_distribution(x, y)
        return out

    def play(self, x, y, rng):
        if not 0 <= x < len(self._alice) or not 0 <= y < len(self._bob):
            raise StrategyError(f"inputs ({x},{y}) outside strategy tables")
        a, post = measure_with_projectors(self._state, self._proj_a[x], rng)
        b, _ = measure_with_projectors(post, self._proj_b[y], rng)
        return a, b


def exact_win_probability(game: TwoPlayerGame, strategy: Strategy) -> float:
    """Exact win probability of ``strategy`` in ``game`` (no sampling)."""
    return game.win_probability_of_behavior(strategy.behavior())
