"""Two-sided quantum value bounds for arbitrary nonlocal games.

The front door for everything beyond hand-written strategies:
:func:`quantum_value_bounds` certifies a sandwich ::

    classical_value  <=  lower_bound  <=  quantum value  <=  upper_bound

for any two-player :class:`~repro.games.nonlocal_games.NonlocalGame`.
XOR-representable games dispatch to the Tsirelson path
(:func:`repro.games.quantum_value.xor_quantum_value`) **bit-identically**
— same RNG draws, same SDP trajectory — so Fig 3 verdicts are
unchanged; general games get a see-saw achievable lower bound
(:mod:`repro.games.seesaw`) and an NPA level-1+AB rigorous upper bound
(:mod:`repro.games.npa`).

On top of the front door sits :func:`screen_nonlocal_games`, the
general-game sibling of the Fig 3 XOR screening cascade
(:func:`repro.games.batch.screen_game_batch`): classically-perfect
games exit first, the see-saw proves advantage second, the NPA bound
refutes third, and only the residue stays undecided (counted, and
conservatively scored as no-advantage). :func:`sample_game_family`
supplies the non-XOR game families the `fig3 --game-family` sweep
draws from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.games.nonlocal_games import NonlocalGame, multi_class_colocation_game
from repro.games.npa import npa_upper_bound
from repro.games.quantum_value import XORValue, xor_quantum_value
from repro.games.seesaw import SeesawResult, seesaw_lower_bound
from repro.obs import metrics as _metrics
from repro.obs.spans import span
from repro.sdp import SDPResult

__all__ = [
    "BOUND_METHODS",
    "GAME_FAMILIES",
    "NONLOCAL_STAGES",
    "NonlocalScreenReport",
    "QuantumValueBounds",
    "quantum_value_bounds",
    "sample_game_family",
    "screen_nonlocal_games",
]

#: Accepted ``method`` values for :func:`quantum_value_bounds`.
BOUND_METHODS = ("auto", "xor", "general")

#: Game families the Fig 3 sweep can draw from (``--game-family``).
GAME_FAMILIES = ("xor", "colocation3", "random-nonlocal")

#: Stages of the general-game screening cascade, in decision order.
NONLOCAL_STAGES = ("perfect", "lower", "upper", "undecided")


@dataclass(frozen=True)
class QuantumValueBounds:
    """Certified two-sided bounds on a game's quantum value.

    Attributes:
        game_name: the game's label.
        method: resolved dispatch, ``"xor"`` or ``"general"``.
        classical_value: exact classical value.
        lower_bound: certified achievable quantum value (never below
            ``classical_value`` — classical strategies are quantum).
        upper_bound: rigorous upper bound (Tsirelson dual certificate
            on the XOR path, NPA repaired dual on the general path).
        xor_value: the full Tsirelson result (XOR path only).
        seesaw: the see-saw result (general path only).
        npa_sdp: the NPA solver result (general path only).
        npa_level: NPA hierarchy level used (general path only).
    """

    game_name: str
    method: str
    classical_value: float
    lower_bound: float
    upper_bound: float
    xor_value: XORValue | None = None
    seesaw: SeesawResult | None = None
    npa_sdp: SDPResult | None = None
    npa_level: str | None = None

    @property
    def advantage(self) -> float:
        """Certified quantum-minus-classical gap (zero when none)."""
        return max(0.0, self.lower_bound - self.classical_value)

    def has_advantage(self, threshold: float = 1e-5) -> bool:
        """True when the lower bound *proves* a quantum advantage."""
        return self.lower_bound > self.classical_value + threshold

    def refutes_advantage(self, threshold: float = 1e-5) -> bool:
        """True when the upper bound *rules out* a quantum advantage."""
        return self.upper_bound <= self.classical_value + threshold


def quantum_value_bounds(
    game: NonlocalGame,
    method: str = "auto",
    *,
    tolerance: float = 1e-8,
    dim: int | None = None,
    restarts: int = 5,
    iterations: int = 200,
    seed: int = 0,
    npa_level: str = "1+ab",
    backend=None,
) -> QuantumValueBounds:
    """Certified ``classical <= lower <= upper`` bounds for ``game``.

    ``method="auto"`` routes XOR-representable games through the exact
    Tsirelson machinery — calling
    :func:`~repro.games.quantum_value.xor_quantum_value` with the same
    tolerance and RNG behavior as the pre-existing Fig 3 path, so
    results are bit-identical to calling it directly — and everything
    else through see-saw + NPA. ``method="xor"`` forces the Tsirelson
    path (raises :class:`GameError` for non-XOR games);
    ``method="general"`` forces see-saw + NPA even on XOR games
    (useful for differential testing).

    Args:
        game: the two-player game.
        method: one of :data:`BOUND_METHODS`.
        tolerance: SDP convergence tolerance (both paths).
        dim: see-saw local dimension; default
            ``max(2, min(4, max(num_outputs)))``.
        restarts / iterations / seed: see-saw budget and determinism
            (see :func:`~repro.games.seesaw.seesaw_lower_bound`).
        npa_level: NPA hierarchy level for the upper bound.
        backend: array backend forwarded to the see-saw.
    """
    if method not in BOUND_METHODS:
        raise GameError(
            f"unknown method {method!r}; expected one of {BOUND_METHODS}"
        )
    xor_form = game.as_xor_game() if method in ("auto", "xor") else None
    if method == "xor" and xor_form is None:
        raise GameError(f"game {game.name!r} is not XOR-representable")
    if xor_form is not None:
        value = xor_quantum_value(xor_form, tolerance=tolerance)
        return QuantumValueBounds(
            game_name=game.name,
            method="xor",
            classical_value=value.classical_value,
            lower_bound=value.quantum_value,
            upper_bound=(1.0 + value.quantum_bias_upper) / 2.0,
            xor_value=value,
        )

    classical = float(game.classical_value())
    if dim is None:
        dim = max(2, min(4, max(game.num_outputs)))
    seesaw = seesaw_lower_bound(
        game,
        dim=dim,
        restarts=restarts,
        iterations=iterations,
        seed=seed,
        backend=backend,
    )
    upper, npa_sdp = npa_upper_bound(game, level=npa_level, tolerance=tolerance)
    return QuantumValueBounds(
        game_name=game.name,
        method="general",
        classical_value=classical,
        lower_bound=max(classical, seesaw.value),
        upper_bound=upper,
        seesaw=seesaw,
        npa_sdp=npa_sdp,
        npa_level=npa_level,
    )


@dataclass(frozen=True)
class NonlocalScreenReport:
    """Outcome of the general-game screening cascade.

    Attributes:
        verdicts: certified-advantage flags per game (undecided games
            are conservatively ``False``).
        stages: the stage that decided each game (one of
            :data:`NONLOCAL_STAGES`).
        classical_values: exact classical values.
        lower_bounds: certified see-saw lower bounds (``nan`` for
            games decided before the see-saw stage).
        upper_bounds: rigorous NPA upper bounds (``nan`` when the
            cascade never needed them).
        threshold: the advantage threshold used.
    """

    verdicts: np.ndarray
    stages: tuple[str, ...]
    classical_values: np.ndarray
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray
    threshold: float = 1e-5

    def stage_counts(self) -> dict[str, int]:
        """Games decided per stage, keyed by :data:`NONLOCAL_STAGES`."""
        return {
            stage: sum(1 for s in self.stages if s == stage)
            for stage in NONLOCAL_STAGES
        }


def screen_nonlocal_games(
    games,
    *,
    threshold: float = 1e-5,
    tolerance: float = 1e-8,
    dim: int | None = None,
    restarts: int = 3,
    iterations: int = 150,
    seed: int = 0,
    npa_level: str = "1+ab",
    backend=None,
) -> NonlocalScreenReport:
    """Cascade advantage verdicts over a batch of general games.

    The general-game analogue of the Fig 3 XOR cascade: (1)
    **perfect** — a classically-perfect game cannot show advantage;
    (2) **lower** — the see-saw's certified lower bound proves it;
    (3) **upper** — the NPA bound refutes it; (4) **undecided** — the
    bounds straddle the threshold; scored as no-advantage but counted
    separately so sweeps can report their resolution rate.
    """
    games = list(games)
    num_games = len(games)
    verdicts = np.zeros(num_games, dtype=bool)
    stages: list[str] = []
    classical_values = np.full(num_games, np.nan)
    lower_bounds = np.full(num_games, np.nan)
    upper_bounds = np.full(num_games, np.nan)
    registry = _metrics.get_registry()
    registry.counter("bounds.cascade.games").inc(num_games)
    with span("bounds.cascade", games=num_games, threshold=threshold):
        for index, game in enumerate(games):
            classical = float(game.classical_value())
            classical_values[index] = classical
            if classical + threshold >= 1.0:
                stages.append("perfect")
                continue
            seesaw = seesaw_lower_bound(
                game,
                dim=dim
                if dim is not None
                else max(2, min(4, max(game.num_outputs))),
                restarts=restarts,
                iterations=iterations,
                seed=seed,
                backend=backend,
            )
            lower = max(classical, seesaw.value)
            lower_bounds[index] = lower
            if lower > classical + threshold:
                verdicts[index] = True
                stages.append("lower")
                continue
            upper, _ = npa_upper_bound(
                game, level=npa_level, tolerance=tolerance
            )
            upper_bounds[index] = upper
            if upper <= classical + threshold:
                stages.append("upper")
            else:
                stages.append("undecided")
        for stage in NONLOCAL_STAGES:
            registry.counter(f"bounds.cascade.{stage}").inc(
                sum(1 for s in stages if s == stage)
            )
    return NonlocalScreenReport(
        verdicts=verdicts,
        stages=tuple(stages),
        classical_values=classical_values,
        lower_bounds=lower_bounds,
        upper_bounds=upper_bounds,
        threshold=threshold,
    )


#: Predicate for a "hot server" (capacity) cell: the pair loses only
#: when both balancers pick server 1 — a NAND win condition, which
#: depends on both outputs non-parity-wise and breaks XOR form.
def _nand_predicate(a: int, b: int) -> float:
    return 0.0 if (a == 1 and b == 1) else 1.0


def sample_game_family(
    family: str,
    num_types: int,
    p: float,
    num_games: int,
    rng: np.random.Generator,
) -> list[NonlocalGame]:
    """Draw ``num_games`` random games from a non-XOR Fig 3 family.

    Families (see :data:`GAME_FAMILIES`; ``"xor"`` stays on the
    original affinity-graph pipeline and is rejected here):

    - ``"colocation3"`` — the 3-class colocation game with each input
      cell independently replaced, with probability ``p``, by the
      capacity (NAND) predicate "never both on the hot server". At
      ``p = 0`` every game is the XOR-representable
      :func:`multi_class_colocation_game`; ``p > 0`` mixes in
      non-parity cells, so verdicts need the see-saw/NPA cascade.
    - ``"random-nonlocal"`` — uniform inputs over ``num_types`` per
      side, binary outputs, each predicate entry winning i.i.d. with
      probability ``p``.

    Draw order is fixed (one ``rng.random`` block per game), so the
    sample is bit-identical for a given generator state regardless of
    downstream screening.
    """
    if family not in GAME_FAMILIES:
        raise GameError(
            f"unknown game family {family!r}; expected one of {GAME_FAMILIES}"
        )
    if family == "xor":
        raise GameError(
            "the 'xor' family uses the affinity-graph pipeline, not "
            "sample_game_family"
        )
    if not 0.0 <= p <= 1.0:
        raise GameError(f"family parameter p {p} outside [0, 1]")
    if num_games < 1:
        raise GameError("need at least one game")
    games: list[NonlocalGame] = []
    if family == "colocation3":
        base = multi_class_colocation_game(3)
        for index in range(num_games):
            pred = np.array(base.pred_mat)
            hot_cells = rng.random((3, 3)) < p
            for x in range(3):
                for y in range(3):
                    if not hot_cells[x, y]:
                        continue
                    for a in range(2):
                        for b in range(2):
                            pred[a, b, x, y] = _nand_predicate(a, b)
            games.append(
                NonlocalGame(
                    name=f"colocation3-hot-{index}",
                    prob_mat=np.array(base.prob_mat),
                    pred_mat=pred,
                )
            )
        return games
    prob = np.full((num_types, num_types), 1.0 / num_types**2)
    for index in range(num_games):
        pred = (
            rng.random((2, 2, num_types, num_types)) < p
        ).astype(float)
        games.append(
            NonlocalGame(
                name=f"random-nonlocal-{index}",
                prob_mat=prob.copy(),
                pred_mat=pred,
            )
        )
    return games
