"""Batched Fig 3 pipeline: vectorized game sampling + screening cascade.

The reference Fig 3 loop draws one random affinity graph at a time and
runs a full Tsirelson SDP per game. This module processes a whole batch
of games as ``(B, n, n)`` ndarrays and decides most of them without any
SDP through a three-stage *screening cascade*:

1. **perfect** — the exact (batched brute-force) classical bias already
   rules out an advantage: the quantum bias can never exceed 1, so any
   game with ``classical + threshold >= 1`` is decided immediately
   (this clears the all-colocate and all-exclusive columns of Fig 3).
2. **lower** — the batched alternating-ascent heuristic produces an
   *achievable* quantum bias; if it clears the classical bias by the
   threshold plus a safety margin, the advantage is proven (a lower
   bound can only under-claim).
3. **upper** — a rigorous dual certificate built from the heuristic's
   Gram matrix (:func:`repro.sdp.batch.dual_upper_bound_batch`); if it
   falls below ``classical + threshold`` by the margin, no advantage is
   possible.

Only the undecided residue escalates to the rigorous stacked ADMM solve
(:func:`repro.sdp.batch.solve_diagonal_sdp_batch`), warm-started from
the heuristic Gram matrices. The decision rule at every stage sandwiches
the quantity the reference path computes, so per-game verdicts are
identical to ``has_quantum_advantage`` — asserted game-by-game in
``tests/games/test_advantage_batch.py`` and in the Fig 3 benchmark.

Sampling consumes the shared RNG in exactly the order of the serial
:func:`~repro.games.graph_games.random_affinity_graph` loop (one
presence draw plus one label draw per vertex pair, games in sequence),
so reference and batched runs see bit-identical games.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GameError
from repro.games.xor import XORGame, _sign_chunks
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.sdp.batch import dual_upper_bound_batch, solve_diagonal_sdp_batch

__all__ = [
    "STAGES",
    "GameBatch",
    "CascadeReport",
    "sample_game_batch",
    "classical_bias_batch",
    "alternating_lower_bound_batch",
    "bias_cost_batch",
    "default_screen_budget",
    "screen_game_batch",
    "screen_advantage_batch",
]

#: Cascade stages in decision order. A game's ``stage`` records which
#: one settled its verdict.
STAGES = ("perfect", "lower", "upper", "sdp")

#: Safety margin the screening stages must clear before deciding without
#: the rigorous solve. The heuristic bounds are exact in real arithmetic
#: but the reference decision compares against an ADMM objective
#: converged to ~1e-8, so screens only claim verdicts that out-margin
#: that solver noise; everything closer escalates to the SDP stage.
DEFAULT_SCREEN_MARGIN = 1e-6


def default_screen_budget(num_types: int) -> tuple[int, int]:
    """Default ``(restarts, iterations)`` heuristic budget per graph size.

    The screens stay correct under *any* budget — the lower/upper
    sandwich uses rigorous bounds plus the safety margin, and the SDP
    stage applies the exact reference rule — so the budget only trades
    heuristic work against escalation volume. At the paper scale
    (``n <= 5``) the historical generous budget keeps the sandwich so
    tight that essentially nothing escalates, and changing it would
    perturb bit-compatible verdict tests, so it is preserved. At the
    ``n = 6..8`` scale the same budget makes escalations vanish too —
    which wastes heuristic time *and* leaves the rigorous stacked-ADMM
    path idle — so larger graphs get a deliberately lean ascent budget,
    calibrated so a real residue reaches the SDP stage at every size.
    """
    if num_types <= 5:
        return 3, 200
    return 2, max(8, 72 // num_types)


@dataclass(frozen=True)
class GameBatch:
    """A batch of XOR games induced by same-shape random affinity graphs.

    Attributes:
        distribution: shared input distribution, shape ``(n, n)`` — all
            games in a batch are drawn over the same (complete) graph
            skeleton, only the edge labels differ.
        targets: per-game target bits, shape ``(B, n, n)``.
    """

    distribution: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        dist = np.asarray(self.distribution, dtype=float)
        targets = np.asarray(self.targets, dtype=int)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise GameError(
                f"distribution must be square, got shape {dist.shape}"
            )
        if targets.ndim != 3 or targets.shape[1:] != dist.shape:
            raise GameError(
                f"targets shape {targets.shape} does not stack "
                f"distribution shape {dist.shape}"
            )
        object.__setattr__(self, "distribution", dist)
        object.__setattr__(self, "targets", targets)

    @property
    def num_games(self) -> int:
        """Number of games in the batch."""
        return self.targets.shape[0]

    @property
    def num_types(self) -> int:
        """Number of task types (vertices) per game."""
        return self.distribution.shape[0]

    def cost_matrices(self) -> np.ndarray:
        """Signed weight matrices ``W_b = pi * (-1)^s_b``, ``(B, n, n)``."""
        signs = np.where(self.targets == 0, 1.0, -1.0)
        return self.distribution[None, :, :] * signs

    def game(self, index: int) -> XORGame:
        """Materialize one game of the batch as an :class:`XORGame`."""
        return XORGame(
            name=f"graph-{self.num_types}v",
            distribution=self.distribution.copy(),
            targets=self.targets[index].copy(),
        )

    def games(self) -> list[XORGame]:
        """Materialize every game of the batch."""
        return [self.game(index) for index in range(self.num_games)]


def sample_game_batch(
    num_types: int,
    p_exclusive: float,
    num_games: int,
    rng: np.random.Generator,
    *,
    include_diagonal: bool = False,
) -> GameBatch:
    """Draw ``num_games`` random Fig 3 games in one vectorized pass.

    RNG consumption matches the serial sampling loop draw-for-draw —
    per vertex pair one edge-presence draw (complete graphs keep every
    edge, but the draw is still consumed) then one label draw, games in
    sequence — so a batch drawn from a generator state equals the games
    the reference loop would have drawn from that state.
    """
    if num_types < 2:
        raise GameError("affinity graph needs at least two task types")
    if not 0.0 <= p_exclusive <= 1.0:
        raise GameError(f"p_exclusive {p_exclusive} outside [0, 1]")
    if num_games < 1:
        raise GameError("need at least one game")
    upper_i, upper_j = np.triu_indices(num_types, k=1)
    draws = rng.random((num_games, upper_i.size, 2))
    labels = draws[..., 1] < p_exclusive
    targets = np.zeros((num_games, num_types, num_types), dtype=int)
    targets[:, upper_i, upper_j] = labels
    targets[:, upper_j, upper_i] = labels
    dist = np.zeros((num_types, num_types))
    dist[upper_i, upper_j] = 1.0
    dist[upper_j, upper_i] = 1.0
    if include_diagonal:
        np.fill_diagonal(dist, 1.0)
    dist = dist / dist.sum()
    return GameBatch(distribution=dist, targets=targets)


def classical_bias_batch(costs: np.ndarray) -> np.ndarray:
    """Exact classical biases for a ``(B, nx, ny)`` stack of cost matrices.

    The same global-flip-reduced brute force as
    :meth:`XORGame.classical_bias`, with the whole batch riding each
    sign-chunk matmul: one ``(K, nx) @ (B, nx, ny)`` product per chunk.
    """
    costs = np.asarray(costs, dtype=float)
    if costs.ndim != 3:
        raise GameError(f"costs must be a (B, nx, ny) stack, got {costs.shape}")
    nx = costs.shape[1]
    if nx > 24:
        raise GameError(
            f"brute force over 2^{nx} assignments is not tractable"
        )
    best = np.full(costs.shape[0], -np.inf)
    for signs in _sign_chunks(nx):
        values = np.abs(signs @ costs).sum(axis=2).max(axis=1)
        np.maximum(best, values, out=best)
    return best


def alternating_lower_bound_batch(
    costs: np.ndarray,
    *,
    restarts: int = 3,
    iterations: int = 200,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched alternating-ascent lower bounds on the quantum bias.

    Vectorizes :func:`~repro.games.quantum_value.alternating_bias_lower_bound`
    over the batch: every game shares each restart's initial ``V`` (the
    serial heuristic seeds a fresh generator per game, so same-shape
    games start identically anyway) and the inner loop runs until no
    game improves. The returned biases are achievable by the returned
    unit-vector strategies, hence true lower bounds.

    Returns ``(bias (B,), U (B, nx, nx+ny), V (B, ny, nx+ny))`` — the
    best over restarts, per game.
    """
    costs = np.asarray(costs, dtype=float)
    if costs.ndim != 3:
        raise GameError(f"costs must be a (B, nx, ny) stack, got {costs.shape}")
    num_games, nx, ny = costs.shape
    dim = nx + ny
    rng = np.random.default_rng(seed)
    costs_t = np.swapaxes(costs, 1, 2)
    best_bias = np.full(num_games, -np.inf)
    best_u = np.zeros((num_games, nx, dim))
    best_v = np.zeros((num_games, ny, dim))
    for _ in range(max(1, restarts)):
        v0 = rng.normal(size=(ny, dim))
        v0 /= np.linalg.norm(v0, axis=1, keepdims=True)
        v = np.broadcast_to(v0, (num_games, ny, dim)).copy()
        u = np.zeros((num_games, nx, dim))
        bias = np.full(num_games, -np.inf)
        for _ in range(iterations):
            u = costs @ v
            norms = np.linalg.norm(u, axis=2, keepdims=True)
            u = np.divide(u, norms, out=np.zeros_like(u), where=norms > 1e-15)
            v = costs_t @ u
            norms = np.linalg.norm(v, axis=2, keepdims=True)
            v = np.divide(v, norms, out=np.zeros_like(v), where=norms > 1e-15)
            new_bias = np.einsum("bxy,bxd,byd->b", costs, u, v)
            improved = new_bias - bias
            bias = new_bias
            if np.all(improved < 1e-12):
                break
        better = bias > best_bias
        if better.any():
            best_bias = np.where(better, bias, best_bias)
            best_u[better] = u[better]
            best_v[better] = v[better]
    return best_bias, best_u, best_v


def bias_cost_batch(costs: np.ndarray) -> np.ndarray:
    """Block cost matrices whose diagonal-SDP optima are the quantum biases.

    The stacked sibling of the serial ``_bias_cost_matrix``: vectors are
    ``[u_1..u_nx, v_1..v_ny]`` and each slice holds ``W_b / 2`` in the
    off-diagonal blocks.
    """
    costs = np.asarray(costs, dtype=float)
    num_games, nx, ny = costs.shape
    blocks = np.zeros((num_games, nx + ny, nx + ny))
    blocks[:, :nx, nx:] = costs / 2.0
    blocks[:, nx:, :nx] = np.swapaxes(costs, 1, 2) / 2.0
    return blocks


@dataclass(frozen=True)
class CascadeReport:
    """Per-game verdicts and per-stage diagnostics of one cascade run.

    Attributes:
        verdicts: per-game advantage verdicts, shape ``(B,)`` bool.
        stages: index into :data:`STAGES` of the stage that decided each
            game.
        classical_bias: exact classical biases (always computed).
        lower_bounds: heuristic quantum lower bounds (NaN for games the
            perfect stage decided before the ascent ran).
        upper_bounds: dual upper bounds (NaN where not computed).
        sdp_objectives: rigorous SDP optima (NaN except for the residue
            that escalated).
        threshold: the advantage detection threshold in effect.
        margin: the screening safety margin in effect.
    """

    verdicts: np.ndarray
    stages: np.ndarray
    classical_bias: np.ndarray
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray
    sdp_objectives: np.ndarray
    threshold: float = 1e-5
    margin: float = field(default=DEFAULT_SCREEN_MARGIN)

    @property
    def num_games(self) -> int:
        """Number of games screened."""
        return int(self.verdicts.shape[0])

    @property
    def advantage_probability(self) -> float:
        """Fraction of games with a quantum advantage."""
        return float(self.verdicts.mean())

    @property
    def escalation_rate(self) -> float:
        """Fraction of games the screens could not decide."""
        return float((self.stages == STAGES.index("sdp")).mean())

    def stage_counts(self) -> dict[str, int]:
        """Games decided per cascade stage, keyed by stage name."""
        return {
            name: int((self.stages == code).sum())
            for code, name in enumerate(STAGES)
        }


def screen_game_batch(
    batch: GameBatch,
    *,
    threshold: float = 1e-5,
    tolerance: float = 1e-8,
    margin: float = DEFAULT_SCREEN_MARGIN,
    restarts: int | None = None,
    iterations: int | None = None,
    heuristic_seed: int = 0,
    backend: str | None = None,
) -> CascadeReport:
    """Decide quantum advantage for every game via the screening cascade.

    Games the perfect/lower/upper screens cannot settle with ``margin``
    to spare escalate to the stacked ADMM solve (warm-started from the
    heuristic Gram matrices), whose verdict applies the exact reference
    rule ``objective > classical + threshold``.

    ``restarts`` / ``iterations`` default per graph size (see
    :func:`default_screen_budget`); pass explicit values to pin a
    budget. ``backend`` selects the array-kernel backend for the
    escalated stacked solve (see :mod:`repro.backend`).
    """
    if restarts is None or iterations is None:
        budget_restarts, budget_iterations = default_screen_budget(
            batch.num_types
        )
        restarts = budget_restarts if restarts is None else restarts
        iterations = budget_iterations if iterations is None else iterations
    costs = batch.cost_matrices()
    num_games = batch.num_games
    registry = _metrics.get_registry()
    with _spans.span("fig3.cascade", games=num_games):
        classical = classical_bias_batch(costs)
        verdicts = np.zeros(num_games, dtype=bool)
        stages = np.zeros(num_games, dtype=int)
        lower = np.full(num_games, np.nan)
        upper = np.full(num_games, np.nan)
        sdp_obj = np.full(num_games, np.nan)

        # Stage 1: classically perfect (quantum bias cannot exceed 1).
        perfect = classical + threshold >= 1.0 + margin
        stages[perfect] = STAGES.index("perfect")

        undecided = np.flatnonzero(~perfect)
        if undecided.size:
            bias_lb, u, v = alternating_lower_bound_batch(
                costs[undecided],
                restarts=restarts,
                iterations=iterations,
                seed=heuristic_seed,
            )
            lower[undecided] = bias_lb

            # Stage 2: achievable lower bound proves the advantage.
            proven = bias_lb > classical[undecided] + threshold + margin
            verdicts[undecided[proven]] = True
            stages[undecided[proven]] = STAGES.index("lower")

            rest = undecided[~proven]
            if rest.size:
                stacked = np.concatenate(
                    [u[~proven], v[~proven]], axis=1
                )
                grams = stacked @ np.swapaxes(stacked, 1, 2)
                blocks = bias_cost_batch(costs[rest])

                # Stage 3: dual certificate refutes the advantage.
                bound = dual_upper_bound_batch(blocks, grams)
                upper[rest] = bound
                refuted = bound <= classical[rest] + threshold - margin
                stages[rest[refuted]] = STAGES.index("upper")

                # Stage 4: rigorous stacked solve for the residue.
                residue = rest[~refuted]
                if residue.size:
                    registry.counter("admm.escalations").inc(
                        int(residue.size)
                    )
                    results = solve_diagonal_sdp_batch(
                        blocks[~refuted],
                        tolerance=tolerance,
                        warm_starts=grams[~refuted],
                        backend=backend,
                    )
                    objectives = np.array([r.objective for r in results])
                    sdp_obj[residue] = objectives
                    verdicts[residue] = (
                        objectives > classical[residue] + threshold
                    )
                    stages[residue] = STAGES.index("sdp")

        registry.counter("fig3.cascade.games").inc(num_games)
        registry.counter("fig3.cascade.advantage").inc(int(verdicts.sum()))
        for code, name in enumerate(STAGES):
            registry.counter(f"fig3.cascade.{name}").inc(
                int((stages == code).sum())
            )
    return CascadeReport(
        verdicts=verdicts,
        stages=stages,
        classical_bias=classical,
        lower_bounds=lower,
        upper_bounds=upper,
        sdp_objectives=sdp_obj,
        threshold=threshold,
        margin=margin,
    )


def screen_advantage_batch(
    num_types: int,
    p_exclusive: float,
    num_games: int,
    rng: np.random.Generator,
    *,
    threshold: float = 1e-5,
    include_diagonal: bool = False,
    tolerance: float = 1e-8,
    margin: float = DEFAULT_SCREEN_MARGIN,
    restarts: int | None = None,
    iterations: int | None = None,
    backend: str | None = None,
) -> CascadeReport:
    """Sample one Fig 3 point's games and screen them in one pass."""
    batch = sample_game_batch(
        num_types,
        p_exclusive,
        num_games,
        rng,
        include_diagonal=include_diagonal,
    )
    return screen_game_batch(
        batch,
        threshold=threshold,
        tolerance=tolerance,
        margin=margin,
        restarts=restarts,
        iterations=iterations,
        backend=backend,
    )
