"""Biased CHSH games: optimal strategies for skewed workloads.

The paper's simulation draws type-C and type-E tasks with equal
probability, making the colocation game a uniform-input CHSH game. Real
workloads are skewed. When each balancer receives type-C with
probability ``p``, the induced game has input distribution
``P(x, y) = Bern(p) x Bern(p)`` — a *biased* CHSH game (cf. Lawson,
Linden & Popescu, "Biased nonlocal games", which the paper cites as
related theory). The Tsirelson SDP machinery applies unchanged, so this
module derives the matched optimal quantum strategy for any bias and the
corresponding load-balancing policy.

This is a paper-extension feature: it answers "what angles should the
QNICs use when the workload is not 50/50?"
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.games.quantum_value import XORValue, tsirelson_strategy, xor_quantum_value
from repro.games.strategies import QuantumStrategy
from repro.games.xor import XORGame

__all__ = [
    "biased_colocation_game",
    "biased_chsh_game",
    "matched_quantum_strategy",
    "biased_game_values",
]


def _bernoulli_product(p: float) -> np.ndarray:
    if not 0.0 < p < 1.0:
        raise GameError(
            f"p_colocate {p} must be strictly inside (0, 1); degenerate "
            "workloads make the game trivial"
        )
    marginal = np.array([1.0 - p, p])
    return np.outer(marginal, marginal)


def biased_chsh_game(p: float) -> XORGame:
    """CHSH (win iff ``a^b == x&y``) with Bernoulli(p) inputs per party."""
    return XORGame(
        name=f"chsh-biased-{p:.3f}",
        distribution=_bernoulli_product(p),
        targets=np.array([[0, 0], [0, 1]]),
    )


def biased_colocation_game(p_colocate: float) -> XORGame:
    """The load-balancing colocation game under a skewed task mix.

    Inputs are task-type bits (1 = type-C, drawn with probability
    ``p_colocate`` independently per balancer); the pair must colocate
    exactly when both received type-C: ``a ^ b == 1 - (x & y)``.
    """
    return XORGame(
        name=f"colocation-biased-{p_colocate:.3f}",
        distribution=_bernoulli_product(p_colocate),
        targets=np.array([[1, 1], [1, 0]]),
    )


def matched_quantum_strategy(
    p_colocate: float, *, tolerance: float = 1e-9
) -> QuantumStrategy:
    """Optimal quantum strategy for the biased colocation game.

    Solves the Tsirelson SDP for the skewed input distribution and
    realizes the optimal vectors as explicit measurements; at
    ``p_colocate = 0.5`` this recovers the paper's CHSH angles (up to a
    global rotation).
    """
    game = biased_colocation_game(p_colocate)
    return tsirelson_strategy(game, tolerance=tolerance)


def biased_game_values(p_colocate: float) -> XORValue:
    """Classical and quantum values of the biased colocation game."""
    return xor_quantum_value(biased_colocation_game(p_colocate))
