"""The CHSH game and its optimal strategies (paper §2).

Win condition: ``a XOR b == x AND y`` with uniformly random input bits.
The best classical strategy outputs ``a = b = 0`` and wins with
probability 3/4; sharing a Bell pair and measuring at the paper's angles
wins with probability ``cos^2(pi/8) ~= 0.8536`` (Tsirelson's bound).

The load-balancing variant (§4.1) flips one party's output so the pair
implements ``a XOR b == NOT (x AND y)``: same-type-C tasks colocate, all
other combinations anti-colocate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.games.base import TwoPlayerGame, uniform_distribution
from repro.games.strategies import (
    DeterministicStrategy,
    QuantumStrategy,
)
from repro.quantum.bases import chsh_alice_basis, chsh_bob_basis, rotation_basis
from repro.quantum.entangle import bell_pair
from repro.quantum.state import DensityMatrix, StateVector

__all__ = [
    "CHSH_QUANTUM_VALUE",
    "CHSH_CLASSICAL_VALUE",
    "chsh_game",
    "chsh_colocation_game",
    "optimal_quantum_strategy",
    "optimal_classical_strategy",
    "colocation_quantum_strategy",
    "chsh_win_probability_for_state",
]

#: Tsirelson's bound, the optimal quantum win probability.
CHSH_QUANTUM_VALUE = math.cos(math.pi / 8) ** 2

#: The optimal classical win probability.
CHSH_CLASSICAL_VALUE = 0.75


def chsh_game() -> TwoPlayerGame:
    """The standard CHSH game: win iff ``a ^ b == x & y``."""
    return TwoPlayerGame(
        name="chsh",
        num_inputs_a=2,
        num_inputs_b=2,
        num_outputs_a=2,
        num_outputs_b=2,
        distribution=uniform_distribution(2, 2),
        predicate=lambda x, y, a, b: (a ^ b) == (x & y),
    )


def chsh_colocation_game() -> TwoPlayerGame:
    """The load-balancing variant: win iff ``a ^ b == NOT (x & y)``.

    Inputs are 1 for type-C tasks; outputs pick one of two servers. A win
    means: both type-C (x = y = 1) -> same server (a ^ b = 0); any other
    input pair -> different servers (a ^ b = 1). The quantum value equals
    the CHSH value, achieved by flipping one party's output of the
    standard strategy.
    """
    return TwoPlayerGame(
        name="chsh-colocation",
        num_inputs_a=2,
        num_inputs_b=2,
        num_outputs_a=2,
        num_outputs_b=2,
        distribution=uniform_distribution(2, 2),
        predicate=lambda x, y, a, b: (a ^ b) == 1 - (x & y),
    )


def optimal_quantum_strategy(
    state: StateVector | DensityMatrix | None = None,
) -> QuantumStrategy:
    """The paper's optimal CHSH strategy.

    Alice measures at angles ``0`` and ``pi/4``; Bob at ``pi/8`` and
    ``-pi/8``; both on a shared Bell pair (or the supplied, possibly
    noisy, two-qubit state).
    """
    if state is None:
        state = bell_pair()
    return QuantumStrategy(
        state,
        alice=[chsh_alice_basis(0), chsh_alice_basis(1)],
        bob=[chsh_bob_basis(0), chsh_bob_basis(1)],
    )


def optimal_classical_strategy() -> DeterministicStrategy:
    """Always answer ``a = b = 0``; wins 3 of 4 input pairs."""
    return DeterministicStrategy(outputs_a=(0, 0), outputs_b=(0, 0))


def colocation_quantum_strategy(
    state: StateVector | DensityMatrix | None = None,
) -> QuantumStrategy:
    """Optimal strategy for :func:`chsh_colocation_game`.

    Identical to :func:`optimal_quantum_strategy` with Bob's output
    flipped, implemented by measuring the orthogonal-direction bases
    (swap the two basis vectors = add pi/2 to the angle).
    """
    if state is None:
        state = bell_pair()
    flipped_bob = [
        rotation_basis(math.pi / 8 + math.pi / 2, label="bob0-flip"),
        rotation_basis(-math.pi / 8 + math.pi / 2, label="bob1-flip"),
    ]
    return QuantumStrategy(
        state,
        alice=[chsh_alice_basis(0), chsh_alice_basis(1)],
        bob=flipped_bob,
    )


def chsh_win_probability_for_state(
    state: StateVector | DensityMatrix,
) -> float:
    """Exact CHSH win probability of the paper's angles on ``state``.

    Used by the hardware/noise ablations: e.g. on a Werner state of
    fidelity F this degrades linearly toward 1/2.
    """
    strategy = optimal_quantum_strategy(state)
    game = chsh_game()
    return game.win_probability_of_behavior(strategy.behavior())
