"""Non-local game framework: CHSH, XOR, graph, and multiplayer games.

The paper's core mapping (§4.1) — task affinity problems onto non-local
games — lives here: game definitions, classical/quantum value
computations, optimal strategy construction, and a Monte-Carlo referee.
"""

from repro.games.base import TwoPlayerGame, uniform_distribution
from repro.games.biased import (
    biased_chsh_game,
    biased_colocation_game,
    biased_game_values,
    matched_quantum_strategy,
)
from repro.games.correlations import (
    alice_marginal,
    behavior_win_probability,
    bob_marginal,
    classical_mixture_behavior,
    is_no_signaling,
    is_valid_behavior,
    pr_box,
)
from repro.games.chsh import (
    CHSH_CLASSICAL_VALUE,
    CHSH_QUANTUM_VALUE,
    chsh_colocation_game,
    chsh_game,
    chsh_win_probability_for_state,
    colocation_quantum_strategy,
    optimal_classical_strategy,
    optimal_quantum_strategy,
)
from repro.games.batch import (
    CascadeReport,
    GameBatch,
    alternating_lower_bound_batch,
    classical_bias_batch,
    sample_game_batch,
    screen_advantage_batch,
    screen_game_batch,
)
from repro.games.graph_games import (
    AffinityGraph,
    advantage_decisions,
    advantage_probability,
    random_affinity_graph,
    xor_game_from_graph,
)
from repro.games.multiplayer import (
    MultiplayerQuantumStrategy,
    MultiplayerXORGame,
    ghz_game,
    ghz_optimal_strategy,
    mermin_classical_value,
    mermin_game,
    mermin_optimal_strategy,
)
from repro.games.nonlocal_games import (
    FFL_CLASSICAL_VALUE,
    MAGIC_SQUARE_CLASSICAL_VALUE,
    MultipartyNonlocalGame,
    NonlocalGame,
    chsh_nonlocal_game,
    ffl_game,
    magic_square_game,
    magic_square_optimal_strategy,
    multi_class_colocation_game,
    multiplayer_behavior,
)
from repro.games.npa import npa1_cost, npa1_upper_bound
from repro.games.products import xor_power, xor_product
from repro.games.quantum_value import (
    XORValue,
    alternating_bias_lower_bound,
    anticommuting_observables,
    has_quantum_advantage,
    tsirelson_strategy,
    xor_quantum_bias,
    xor_quantum_value,
)
from repro.games.referee import GameRecord, play_rounds
from repro.games.weighted import (
    advantage_boundary_cc_weight,
    weighted_colocation_game,
    weighted_values,
)
from repro.games.strategies import (
    BinaryObservable,
    DeterministicStrategy,
    QuantumStrategy,
    SharedRandomnessStrategy,
    Strategy,
    exact_win_probability,
)
from repro.games.xor import XORGame

__all__ = [
    "TwoPlayerGame",
    "uniform_distribution",
    "alice_marginal",
    "behavior_win_probability",
    "bob_marginal",
    "classical_mixture_behavior",
    "is_no_signaling",
    "is_valid_behavior",
    "pr_box",
    "biased_chsh_game",
    "biased_colocation_game",
    "biased_game_values",
    "matched_quantum_strategy",
    "CHSH_CLASSICAL_VALUE",
    "CHSH_QUANTUM_VALUE",
    "chsh_colocation_game",
    "chsh_game",
    "chsh_win_probability_for_state",
    "colocation_quantum_strategy",
    "optimal_classical_strategy",
    "optimal_quantum_strategy",
    "AffinityGraph",
    "CascadeReport",
    "GameBatch",
    "advantage_decisions",
    "advantage_probability",
    "alternating_lower_bound_batch",
    "classical_bias_batch",
    "random_affinity_graph",
    "sample_game_batch",
    "screen_advantage_batch",
    "screen_game_batch",
    "xor_game_from_graph",
    "MultiplayerQuantumStrategy",
    "MultiplayerXORGame",
    "ghz_game",
    "ghz_optimal_strategy",
    "mermin_classical_value",
    "mermin_game",
    "mermin_optimal_strategy",
    "FFL_CLASSICAL_VALUE",
    "MAGIC_SQUARE_CLASSICAL_VALUE",
    "MultipartyNonlocalGame",
    "NonlocalGame",
    "chsh_nonlocal_game",
    "ffl_game",
    "magic_square_game",
    "magic_square_optimal_strategy",
    "multi_class_colocation_game",
    "multiplayer_behavior",
    "npa1_cost",
    "npa1_upper_bound",
    "xor_power",
    "xor_product",
    "XORValue",
    "alternating_bias_lower_bound",
    "anticommuting_observables",
    "has_quantum_advantage",
    "tsirelson_strategy",
    "xor_quantum_bias",
    "xor_quantum_value",
    "GameRecord",
    "play_rounds",
    "advantage_boundary_cc_weight",
    "weighted_colocation_game",
    "weighted_values",
    "BinaryObservable",
    "DeterministicStrategy",
    "QuantumStrategy",
    "SharedRandomnessStrategy",
    "Strategy",
    "exact_win_probability",
    "XORGame",
]
