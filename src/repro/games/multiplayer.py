"""Multiplayer XOR games (paper §4.1: "extended to more than two players").

A ``k``-player XOR game draws an input tuple ``x = (x_1..x_k)`` from a
joint distribution; each player answers a bit and the team wins when the
XOR of all answers equals the target bit ``s(x)``. The canonical example
with a *perfect* quantum strategy is the GHZ (Mermin) game, included here
with its optimal GHZ-state strategy — the multiparty analogue the paper
cites for larger-than-CHSH advantages [12, 31].
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GameError, StrategyError
from repro.quantum.bases import MeasurementBasis
from repro.quantum.entangle import ghz_state
from repro.quantum.linalg import expand_operator
from repro.quantum.state import DensityMatrix, StateVector

__all__ = [
    "MultiplayerXORGame",
    "MultiplayerQuantumStrategy",
    "ghz_game",
    "ghz_optimal_strategy",
    "mermin_game",
    "mermin_optimal_strategy",
    "mermin_classical_value",
]


@dataclass(frozen=True)
class MultiplayerXORGame:
    """A ``k``-player XOR game.

    Attributes:
        name: label for reports.
        num_players: number of parties.
        inputs: tuple of input tuples with positive probability.
        probabilities: probability of each input tuple.
        targets: target XOR bit per input tuple.
    """

    name: str
    num_players: int
    inputs: tuple[tuple[int, ...], ...]
    probabilities: tuple[float, ...]
    targets: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.num_players < 2:
            raise GameError("need at least two players")
        if not self.inputs:
            raise GameError("need at least one input tuple")
        if len({len(t) for t in self.inputs}) != 1 or len(
            self.inputs[0]
        ) != self.num_players:
            raise GameError("every input tuple must have one entry per player")
        if len(self.probabilities) != len(self.inputs):
            raise GameError("probabilities/inputs length mismatch")
        if len(self.targets) != len(self.inputs):
            raise GameError("targets/inputs length mismatch")
        if any(p < 0 for p in self.probabilities) or abs(
            sum(self.probabilities) - 1.0
        ) > 1e-9:
            raise GameError("probabilities must form a distribution")
        if any(t not in (0, 1) for t in self.targets):
            raise GameError("targets must be bits")

    def input_alphabet(self, player: int) -> list[int]:
        """Distinct inputs the given player can receive."""
        return sorted({t[player] for t in self.inputs})

    def classical_value(self) -> float:
        """Exact classical value by brute force over deterministic tables.

        Each player's strategy maps its input alphabet to a bit. The
        search is exponential in the total alphabet size — fine for the
        small promise games studied here.
        """
        alphabets = [self.input_alphabet(p) for p in range(self.num_players)]
        table_spaces = [
            list(itertools.product((0, 1), repeat=len(alpha)))
            for alpha in alphabets
        ]
        index = [
            {symbol: i for i, symbol in enumerate(alpha)} for alpha in alphabets
        ]
        best = 0.0
        for tables in itertools.product(*table_spaces):
            value = 0.0
            for prob, inp, target in zip(
                self.probabilities, self.inputs, self.targets
            ):
                parity = 0
                for player in range(self.num_players):
                    parity ^= tables[player][index[player][inp[player]]]
                if parity == target:
                    value += prob
            best = max(best, value)
        return best

    def to_nonlocal_game(self):
        """View as a dense
        :class:`~repro.games.nonlocal_games.MultipartyNonlocalGame`.

        The dense form's brute-force ``classical_value`` agrees with
        :meth:`classical_value` exactly — the differential check the
        test suite runs for the Mermin family.
        """
        from repro.games.nonlocal_games import MultipartyNonlocalGame

        return MultipartyNonlocalGame.from_xor_game(self)

    def quantum_value_of_strategy(
        self, strategy: "MultiplayerQuantumStrategy"
    ) -> float:
        """Exact win probability of a given quantum strategy."""
        total = 0.0
        for prob, inp, target in zip(
            self.probabilities, self.inputs, self.targets
        ):
            total += prob * strategy.parity_probability(inp, target)
        return total


class MultiplayerQuantumStrategy:
    """Shared state + one single-qubit basis per player per input symbol."""

    def __init__(
        self,
        state: StateVector | DensityMatrix,
        bases: Sequence[dict[int, MeasurementBasis]],
    ) -> None:
        if isinstance(state, StateVector):
            state = state.to_density_matrix()
        if state.num_qubits != len(bases):
            raise StrategyError(
                f"state has {state.num_qubits} qubits for {len(bases)} players"
            )
        for table in bases:
            for basis in table.values():
                if basis.num_qubits != 1:
                    raise StrategyError("per-player bases must be single-qubit")
        self._state = state
        self._bases = [dict(table) for table in bases]

    @property
    def num_players(self) -> int:
        """Number of players (= qubits of the shared state)."""
        return len(self._bases)

    def joint_distribution(self, inputs: Sequence[int]) -> np.ndarray:
        """Exact distribution over output tuples for the given inputs,
        shape ``(2,) * num_players``."""
        n = self.num_players
        if len(inputs) != n:
            raise StrategyError("one input per player required")
        projector_sets = []
        for player, symbol in enumerate(inputs):
            try:
                basis = self._bases[player][symbol]
            except KeyError as exc:
                raise StrategyError(
                    f"player {player} has no basis for input {symbol!r}"
                ) from exc
            projector_sets.append(
                [
                    expand_operator(p, [player], n)
                    for p in basis.projectors()
                ]
            )
        mat = self._state.matrix
        out = np.zeros((2,) * n)
        for outcome in itertools.product((0, 1), repeat=n):
            op = np.eye(mat.shape[0], dtype=np.complex128)
            for player, bit in enumerate(outcome):
                op = op @ projector_sets[player][bit]
            out[outcome] = float(np.real(np.trace(mat @ op)))
        out = out.clip(min=0.0)
        total = float(out.sum())
        if abs(total - 1.0) > 1e-8:
            raise StrategyError(
                f"joint distribution sums to {total!r}, not 1: the "
                "measurement projectors are not complete for this state"
            )
        return out / total

    def behavior(self, alphabets: Sequence[int] | None = None) -> np.ndarray:
        """Dense behavior tensor over integer inputs ``0..n_p - 1``.

        ``alphabets`` gives each player's input alphabet size (default:
        inferred as ``max(symbol) + 1`` from the basis tables, which
        therefore must be keyed by contiguous non-negative integers).
        The result has shape ``tuple(alphabets) + (2,) * k`` — inputs
        first, then one binary output axis per player — the layout
        :func:`repro.lb.policies.behavior_sampling_tables` consumes.
        """
        from repro.games.nonlocal_games import multiplayer_behavior

        if alphabets is None:
            alphabets = [max(table) + 1 for table in self._bases]
        return multiplayer_behavior(self, alphabets)

    def parity_probability(self, inputs: Sequence[int], target: int) -> float:
        """Probability that the players' output XOR equals ``target``."""
        dist = self.joint_distribution(inputs)
        total = 0.0
        for outcome in itertools.product((0, 1), repeat=self.num_players):
            parity = 0
            for bit in outcome:
                parity ^= bit
            if parity == target:
                total += dist[outcome]
        return float(total)

    def play(
        self, inputs: Sequence[int], rng: np.random.Generator
    ) -> tuple[int, ...]:
        """Sample an output tuple for the given inputs."""
        dist = self.joint_distribution(inputs)
        flat = dist.reshape(-1)
        idx = int(rng.choice(flat.size, p=flat))
        return tuple(
            (idx >> (self.num_players - 1 - p)) & 1
            for p in range(self.num_players)
        )


def ghz_game() -> MultiplayerXORGame:
    """The 3-player GHZ (Mermin) game.

    Inputs drawn uniformly from ``{000, 011, 101, 110}``; the team must
    produce ``a XOR b XOR c = OR(inputs)``. Classical value 3/4; a GHZ
    state wins with certainty.
    """
    inputs = ((0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0))
    targets = tuple(1 if any(t) else 0 for t in inputs)
    return MultiplayerXORGame(
        name="ghz",
        num_players=3,
        inputs=inputs,
        probabilities=(0.25,) * 4,
        targets=targets,
    )


def mermin_game(num_players: int) -> MultiplayerXORGame:
    """The ``n``-player Mermin parity game.

    Inputs are drawn uniformly from bit strings of even Hamming weight;
    the team wins when the XOR of all answers equals
    ``(weight / 2) mod 2``. For ``n = 3`` this is exactly
    :func:`ghz_game`. A GHZ state wins with certainty for every ``n``,
    while the classical value is ``1/2 + 2^(-ceil(n/2))`` — the
    multipartite advantage the paper cites grows with the player count.
    """
    if num_players < 2:
        raise GameError("Mermin game needs at least two players")
    inputs = []
    targets = []
    for bits in itertools.product((0, 1), repeat=num_players):
        weight = sum(bits)
        if weight % 2 == 0:
            inputs.append(bits)
            targets.append((weight // 2) % 2)
    probability = 1.0 / len(inputs)
    return MultiplayerXORGame(
        name=f"mermin-{num_players}",
        num_players=num_players,
        inputs=tuple(inputs),
        probabilities=(probability,) * len(inputs),
        targets=tuple(targets),
    )


def mermin_classical_value(num_players: int) -> float:
    """Closed-form classical value ``1/2 + 2^(-ceil(n/2))`` (Mermin)."""
    if num_players < 2:
        raise GameError("Mermin game needs at least two players")
    return 0.5 + 2.0 ** (-math.ceil(num_players / 2))


def mermin_optimal_strategy(num_players: int) -> MultiplayerQuantumStrategy:
    """Perfect GHZ strategy for :func:`mermin_game`: X on input 0, Y on 1."""
    sqrt2 = math.sqrt(2.0)
    x_basis = MeasurementBasis(
        (
            np.array([1, 1], dtype=np.complex128) / sqrt2,
            np.array([1, -1], dtype=np.complex128) / sqrt2,
        ),
        label="X",
    )
    y_basis = MeasurementBasis(
        (
            np.array([1, 1j], dtype=np.complex128) / sqrt2,
            np.array([1, -1j], dtype=np.complex128) / sqrt2,
        ),
        label="Y",
    )
    tables = [{0: x_basis, 1: y_basis} for _ in range(num_players)]
    return MultiplayerQuantumStrategy(ghz_state(num_players), tables)


def ghz_optimal_strategy() -> MultiplayerQuantumStrategy:
    """The perfect GHZ-game strategy: X basis on input 0, Y basis on 1.

    Measuring ``X`` is the rotated computational basis at ``pi/4``;
    measuring ``Y`` uses the circular basis ``(|0> ± i|1>)/sqrt2``.
    """
    sqrt2 = math.sqrt(2.0)
    x_basis = MeasurementBasis(
        (
            np.array([1, 1], dtype=np.complex128) / sqrt2,
            np.array([1, -1], dtype=np.complex128) / sqrt2,
        ),
        label="X",
    )
    y_basis = MeasurementBasis(
        (
            np.array([1, 1j], dtype=np.complex128) / sqrt2,
            np.array([1, -1j], dtype=np.complex128) / sqrt2,
        ),
        label="Y",
    )
    tables = [{0: x_basis, 1: y_basis} for _ in range(3)]
    return MultiplayerQuantumStrategy(ghz_state(3), tables)
