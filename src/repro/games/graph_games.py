"""Affinity graphs and the XOR games they induce (paper §4.1, Fig 3).

Task types are vertices; each edge is labeled *colocate* (the two types
benefit from sharing a server: same output bit) or *exclusive* (they
should land on different servers: different output bits). Two load
balancers receiving types ``x`` and ``y`` win the induced XOR game when
their server choices respect the label of edge ``{x, y}``.

Fig 3 draws the edge labels at random — each edge exclusive with
probability ``p`` — over the complete graph on 5 vertices, and asks how
often the induced game has a quantum advantage.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.errors import GameError
from repro.games.xor import XORGame

__all__ = [
    "AffinityGraph",
    "random_affinity_graph",
    "xor_game_from_graph",
    "advantage_decisions",
    "advantage_probability",
]

#: Accepted ``method`` values for the Fig 3 advantage computations.
ADVANTAGE_METHODS = ("auto", "reference", "batched")


class AffinityGraph:
    """A labeled affinity graph over task types.

    Wraps a :class:`networkx.Graph` whose edges carry a boolean
    ``exclusive`` attribute. Vertices are integers ``0..n-1``.
    """

    def __init__(self, graph: nx.Graph) -> None:
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise GameError("vertices must be integers 0..n-1")
        if len(nodes) < 2:
            raise GameError("affinity graph needs at least two task types")
        for u, v, data in graph.edges(data=True):
            if "exclusive" not in data:
                raise GameError(f"edge ({u},{v}) missing 'exclusive' label")
        self._graph = graph

    @classmethod
    def complete(cls, num_types: int, exclusive_edges: set[tuple[int, int]]
                 ) -> "AffinityGraph":
        """Complete graph with the listed (unordered) edges exclusive."""
        graph = nx.complete_graph(num_types)
        normalized = {tuple(sorted(e)) for e in exclusive_edges}
        for u, v in graph.edges:
            graph.edges[u, v]["exclusive"] = tuple(sorted((u, v))) in normalized
        return cls(graph)

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph."""
        return self._graph

    @property
    def num_types(self) -> int:
        """Number of task types (vertices)."""
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of labeled edges."""
        return self._graph.number_of_edges()

    def is_exclusive(self, u: int, v: int) -> bool:
        """Label of edge ``{u, v}``; raises when absent."""
        try:
            return bool(self._graph.edges[u, v]["exclusive"])
        except KeyError as exc:
            raise GameError(f"no edge between {u} and {v}") from exc

    def exclusive_fraction(self) -> float:
        """Fraction of edges labeled exclusive."""
        labels = [d["exclusive"] for _, _, d in self._graph.edges(data=True)]
        return float(np.mean(labels)) if labels else 0.0

    def __repr__(self) -> str:
        return (
            f"AffinityGraph(num_types={self.num_types}, "
            f"edges={self.num_edges}, "
            f"exclusive={self.exclusive_fraction():.2f})"
        )


def random_affinity_graph(
    num_types: int,
    p_exclusive: float,
    rng: np.random.Generator,
    *,
    edge_probability: float = 1.0,
) -> AffinityGraph:
    """Random affinity graph as in Fig 3.

    Every vertex pair is connected with probability ``edge_probability``
    (1.0 = complete graph, the Fig 3 setting) and each present edge is
    labeled exclusive independently with probability ``p_exclusive``.
    Regenerates until the graph has at least one edge.
    """
    if not 0.0 <= p_exclusive <= 1.0:
        raise GameError(f"p_exclusive {p_exclusive} outside [0, 1]")
    if not 0.0 < edge_probability <= 1.0:
        raise GameError(f"edge_probability {edge_probability} outside (0, 1]")
    while True:
        graph = nx.Graph()
        graph.add_nodes_from(range(num_types))
        for u in range(num_types):
            for v in range(u + 1, num_types):
                if rng.random() < edge_probability:
                    graph.add_edge(
                        u, v, exclusive=bool(rng.random() < p_exclusive)
                    )
        if graph.number_of_edges() > 0:
            return AffinityGraph(graph)


def xor_game_from_graph(
    affinity: AffinityGraph,
    *,
    include_diagonal: bool = False,
    exclusive_diagonal: frozenset[int] | set[int] = frozenset(),
) -> XORGame:
    """The XOR game induced by an affinity graph.

    Inputs are vertices. The referee draws an edge uniformly at random
    (each direction equally likely) and hands the endpoints to the two
    players; they win when ``a XOR b`` equals the edge label (1 =
    exclusive). With ``include_diagonal`` the referee may also hand both
    players the same type: colocate by default (the natural rule for
    same-subtype cache sharing), or *separate* for the vertices listed in
    ``exclusive_diagonal`` (e.g. the type-E class, where two exclusive
    tasks must not share a server).
    """
    n = affinity.num_types
    for vertex in exclusive_diagonal:
        if not 0 <= vertex < n:
            raise GameError(
                f"exclusive_diagonal vertex {vertex} outside 0..{n - 1}"
            )
    dist = np.zeros((n, n))
    targets = np.zeros((n, n), dtype=int)
    for u, v, data in affinity.graph.edges(data=True):
        dist[u, v] = dist[v, u] = 1.0
        label = 1 if data["exclusive"] else 0
        targets[u, v] = targets[v, u] = label
    if include_diagonal:
        np.fill_diagonal(dist, 1.0)
        for vertex in exclusive_diagonal:
            targets[vertex, vertex] = 1
    total = dist.sum()
    if total == 0:
        raise GameError("graph has no edges; the induced game is empty")
    dist = dist / total
    return XORGame(
        name=f"graph-{n}v",
        distribution=dist,
        targets=targets,
    )


def advantage_decisions(
    num_types: int,
    p_exclusive: float,
    num_games: int,
    rng: np.random.Generator,
    *,
    threshold: float = 1e-5,
    include_diagonal: bool = False,
    tolerance: float = 1e-8,
    method: str = "auto",
    game_family: str = "xor",
) -> np.ndarray:
    """Per-game advantage verdicts for one Fig 3 point.

    ``method`` selects the pipeline:

    - ``"reference"`` — the serial loop: one graph, one full Tsirelson
      SDP per game via :func:`~repro.games.quantum_value.has_quantum_advantage`.
    - ``"batched"`` — the screening cascade over the whole batch
      (:func:`repro.games.batch.screen_advantage_batch`): exact batched
      classical bias, heuristic lower / dual upper screens, stacked
      ADMM only for the undecided residue.
    - ``"auto"`` (default) — the batched cascade; it samples the same
      games from ``rng`` and returns the same per-game verdicts.

    Both paths consume ``rng`` identically, so verdict arrays are
    comparable game-by-game across methods.

    ``game_family`` extends the sweep beyond XOR: ``"xor"`` (default)
    keeps the affinity-graph pipeline above bit-for-bit; the non-XOR
    families of :data:`repro.games.bounds.GAME_FAMILIES` sample
    general games from ``rng`` (``p_exclusive`` becomes the family's
    cell-replacement / win-density parameter) and decide them with the
    see-saw/NPA cascade (:func:`repro.games.bounds.screen_nonlocal_games`);
    only certified advantages count, so the reported fraction is a
    lower bound for those families.
    """
    if num_games < 1:
        raise GameError("need at least one game")
    if method not in ADVANTAGE_METHODS:
        raise GameError(
            f"unknown method {method!r}; expected one of {ADVANTAGE_METHODS}"
        )
    if game_family != "xor":
        from repro.games.bounds import (
            sample_game_family,
            screen_nonlocal_games,
        )

        games = sample_game_family(
            game_family, num_types, p_exclusive, num_games, rng
        )
        report = screen_nonlocal_games(
            games, threshold=threshold, tolerance=tolerance
        )
        return report.verdicts.copy()
    if method in ("auto", "batched"):
        from repro.games.batch import screen_advantage_batch

        report = screen_advantage_batch(
            num_types,
            p_exclusive,
            num_games,
            rng,
            threshold=threshold,
            include_diagonal=include_diagonal,
            tolerance=tolerance,
        )
        return report.verdicts.copy()

    from repro.games.quantum_value import has_quantum_advantage

    verdicts = np.zeros(num_games, dtype=bool)
    for index in range(num_games):
        affinity = random_affinity_graph(num_types, p_exclusive, rng)
        game = xor_game_from_graph(affinity, include_diagonal=include_diagonal)
        verdicts[index] = has_quantum_advantage(
            game, threshold=threshold, tolerance=tolerance
        )
    return verdicts


def advantage_probability(
    num_types: int,
    p_exclusive: float,
    num_games: int,
    rng: np.random.Generator,
    *,
    threshold: float = 1e-5,
    include_diagonal: bool = False,
    tolerance: float = 1e-8,
    method: str = "auto",
    game_family: str = "xor",
) -> float:
    """Fraction of random games with a quantum advantage (one Fig 3 point).

    ``method="auto"`` (default) runs the batched screening cascade; the
    serial per-game loop is available as ``method="reference"``. The two
    sample identical games and make identical per-game decisions (see
    :func:`advantage_decisions`), so the returned fraction is the same.
    Non-``"xor"`` values of ``game_family`` sweep the general-game
    families instead (see :func:`advantage_decisions`).
    """
    return float(
        advantage_decisions(
            num_types,
            p_exclusive,
            num_games,
            rng,
            threshold=threshold,
            include_diagonal=include_diagonal,
            tolerance=tolerance,
            method=method,
            game_family=game_family,
        ).mean()
    )
