"""Products (parallel repetition) of XOR games.

In the XOR-ed product of two XOR games the referee plays both games at
once and the team must get the XOR of the two target bits right. A
celebrated structural fact (Cleve-Slofstra-Unger-Upadhyay) is that the
*quantum* bias is exactly multiplicative under this product —
``eps_q(G1 (+) G2) = eps_q(G1) * eps_q(G2)`` — while the classical bias
can be strictly super-multiplicative (playing two CHSH instances XOR-ed
together, classical players win more than the naive square).

Systems reading: a load-balancer pair that must coordinate *several*
decisions per round (one per game instance) keeps exactly its per-game
quantum edge per instance, whereas classical strategies can hedge across
instances — quantified by the product-bias tables in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.games.xor import XORGame

__all__ = ["xor_product", "xor_power"]


def xor_product(first: XORGame, second: XORGame) -> XORGame:
    """The XOR-ed product game ``first (+) second``.

    Alice's input is a pair ``(x1, x2)`` (flattened as
    ``x1 * nx2 + x2``), similarly for Bob; the input distribution is the
    product; the target is ``s1(x1, y1) XOR s2(x2, y2)``.
    """
    distribution = np.kron(first.distribution, second.distribution)
    targets = (
        first.targets[:, None, :, None] ^ second.targets[None, :, None, :]
    )
    nx = first.num_inputs_a * second.num_inputs_a
    ny = first.num_inputs_b * second.num_inputs_b
    targets = targets.reshape(nx, ny)
    return XORGame(
        name=f"({first.name})(+)({second.name})",
        distribution=distribution,
        targets=targets,
    )


def xor_power(game: XORGame, k: int) -> XORGame:
    """The ``k``-fold XOR-ed product of ``game`` with itself."""
    if k < 1:
        raise GameError(f"power must be >= 1, got {k}")
    out = game
    for _ in range(k - 1):
        out = xor_product(out, game)
    return out
