"""XOR games: the class of games the paper's load balancers play (§4.1).

An XOR game is defined by a joint input distribution ``pi(x, y)`` and a
target bit ``s(x, y)``; the players win when ``a XOR b == s(x, y)``. Only
the relation between outputs matters, never the values themselves, which
is what lets outputs stay uniformly random (paper §2) — exactly the
property load balancing needs.

Values are usually expressed through the *bias*
``eps = 2 * win_probability - 1``. The classical bias maximizes
``sum pi c a b`` over signs ``a, b in {-1, +1}`` (exact brute force here);
the quantum bias is Tsirelson's SDP over unit vectors, computed in
:mod:`repro.games.quantum_value`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.games.base import TwoPlayerGame

__all__ = ["XORGame"]


@dataclass(frozen=True)
class XORGame:
    """An XOR game ``(pi, s)``.

    Attributes:
        name: label used in reports.
        distribution: joint input distribution, shape ``(nx, ny)``.
        targets: target XOR bits ``s(x, y)`` in {0, 1}, same shape.
    """

    name: str
    distribution: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        dist = np.asarray(self.distribution, dtype=float)
        targets = np.asarray(self.targets, dtype=int)
        if dist.ndim != 2:
            raise GameError(f"distribution must be 2-D, got {dist.shape}")
        if targets.shape != dist.shape:
            raise GameError(
                f"targets shape {targets.shape} != distribution {dist.shape}"
            )
        if (dist < -1e-12).any() or abs(dist.sum() - 1.0) > 1e-9:
            raise GameError("distribution must be a probability distribution")
        if not np.isin(targets, (0, 1)).all():
            raise GameError("targets must be 0/1")
        object.__setattr__(self, "distribution", dist.clip(min=0.0))
        object.__setattr__(self, "targets", targets)
        self.distribution.flags.writeable = False
        self.targets.flags.writeable = False

    # -- shapes ---------------------------------------------------------------

    @property
    def num_inputs_a(self) -> int:
        """Alice's input alphabet size."""
        return self.distribution.shape[0]

    @property
    def num_inputs_b(self) -> int:
        """Bob's input alphabet size."""
        return self.distribution.shape[1]

    def cost_matrix(self) -> np.ndarray:
        """The signed, weighted matrix ``W = pi * (-1)^s``.

        The bias of a sign assignment ``(a, b)`` is ``a^T W b``; of a
        vector strategy, ``sum W_xy <u_x, v_y>``.
        """
        return self.distribution * np.where(self.targets == 0, 1.0, -1.0)

    # -- values -----------------------------------------------------------------

    def classical_bias(self) -> float:
        """Exact classical bias by brute force over Alice's sign vectors.

        For each of Alice's ``2^nx`` sign assignments, Bob's optimum is the
        column-wise sign match, so the cost is ``O(2^nx * nx * ny)``.
        """
        w = self.cost_matrix()
        nx = self.num_inputs_a
        if nx > 24:
            raise GameError(
                f"brute force over 2^{nx} assignments is not tractable"
            )
        best = -np.inf
        # Enumerate sign vectors via bit patterns of an integer counter.
        for pattern in range(1 << (nx - 1), 1 << nx):
            # Fix the leading sign to +1 (global flip symmetry) by only
            # enumerating patterns whose top bit is set.
            signs = np.where(
                (pattern >> np.arange(nx)) & 1, 1.0, -1.0
            )
            col = signs @ w
            best = max(best, float(np.abs(col).sum()))
        return best

    def classical_value(self) -> float:
        """Classical win probability ``(1 + bias) / 2``."""
        return (1.0 + self.classical_bias()) / 2.0

    def best_classical_assignment(self) -> tuple[np.ndarray, np.ndarray]:
        """An optimal deterministic strategy as ±1 sign vectors."""
        w = self.cost_matrix()
        nx = self.num_inputs_a
        if nx > 24:
            raise GameError(
                f"brute force over 2^{nx} assignments is not tractable"
            )
        best = -np.inf
        best_signs: np.ndarray | None = None
        for pattern in range(1 << nx):
            signs = np.where((pattern >> np.arange(nx)) & 1, 1.0, -1.0)
            value = float(np.abs(signs @ w).sum())
            if value > best:
                best = value
                best_signs = signs
        assert best_signs is not None
        col = best_signs @ w
        bob = np.where(col >= 0, 1.0, -1.0)
        return best_signs, bob

    def win_probability_of_bias(self, bias: float) -> float:
        """Convert a bias to a win probability."""
        return (1.0 + bias) / 2.0

    # -- conversions ----------------------------------------------------------

    def to_two_player_game(self) -> TwoPlayerGame:
        """View as a generic :class:`TwoPlayerGame` (binary outputs)."""
        targets = self.targets

        return TwoPlayerGame(
            name=self.name,
            num_inputs_a=self.num_inputs_a,
            num_inputs_b=self.num_inputs_b,
            num_outputs_a=2,
            num_outputs_b=2,
            distribution=self.distribution,
            predicate=lambda x, y, a, b: (a ^ b) == int(targets[x, y]),
        )

    @classmethod
    def chsh(cls) -> "XORGame":
        """CHSH as an XOR game (targets = x AND y)."""
        dist = np.full((2, 2), 0.25)
        targets = np.array([[0, 0], [0, 1]])
        return cls(name="chsh", distribution=dist, targets=targets)

    def __repr__(self) -> str:
        return (
            f"XORGame({self.name!r}, "
            f"inputs=({self.num_inputs_a},{self.num_inputs_b}))"
        )
