"""XOR games: the class of games the paper's load balancers play (§4.1).

An XOR game is defined by a joint input distribution ``pi(x, y)`` and a
target bit ``s(x, y)``; the players win when ``a XOR b == s(x, y)``. Only
the relation between outputs matters, never the values themselves, which
is what lets outputs stay uniformly random (paper §2) — exactly the
property load balancing needs.

Values are usually expressed through the *bias*
``eps = 2 * win_probability - 1``. The classical bias maximizes
``sum pi c a b`` over signs ``a, b in {-1, +1}`` (exact brute force here);
the quantum bias is Tsirelson's SDP over unit vectors, computed in
:mod:`repro.games.quantum_value`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.games.base import TwoPlayerGame

__all__ = ["XORGame"]

#: Sign-vector rows materialized per brute-force chunk; bounds peak
#: memory at ~chunk * nx floats while keeping the matmuls large.
_BRUTE_FORCE_CHUNK = 1 << 14


def _sign_chunks(nx: int):
    """Yield ±1 sign matrices covering Alice's ``2^(nx-1)`` assignments.

    The leading sign (bit ``nx - 1``) is fixed to +1: flipping every
    sign of both players negates nothing in an XOR game (global flip
    symmetry), so half the patterns suffice. Yielded chunks have shape
    ``(<=_BRUTE_FORCE_CHUNK, nx)``.
    """
    bits = np.arange(nx)
    for start in range(1 << (nx - 1), 1 << nx, _BRUTE_FORCE_CHUNK):
        stop = min(start + _BRUTE_FORCE_CHUNK, 1 << nx)
        patterns = np.arange(start, stop, dtype=np.int64)
        yield np.where((patterns[:, None] >> bits) & 1, 1.0, -1.0)


@dataclass(frozen=True)
class XORGame:
    """An XOR game ``(pi, s)``.

    Attributes:
        name: label used in reports.
        distribution: joint input distribution, shape ``(nx, ny)``.
        targets: target XOR bits ``s(x, y)`` in {0, 1}, same shape.
    """

    name: str
    distribution: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        dist = np.asarray(self.distribution, dtype=float)
        targets = np.asarray(self.targets, dtype=int)
        if dist.ndim != 2:
            raise GameError(f"distribution must be 2-D, got {dist.shape}")
        if targets.shape != dist.shape:
            raise GameError(
                f"targets shape {targets.shape} != distribution {dist.shape}"
            )
        if (dist < -1e-12).any() or abs(dist.sum() - 1.0) > 1e-9:
            raise GameError("distribution must be a probability distribution")
        if not np.isin(targets, (0, 1)).all():
            raise GameError("targets must be 0/1")
        object.__setattr__(self, "distribution", dist.clip(min=0.0))
        object.__setattr__(self, "targets", targets)
        self.distribution.flags.writeable = False
        self.targets.flags.writeable = False

    # -- shapes ---------------------------------------------------------------

    @property
    def num_inputs_a(self) -> int:
        """Alice's input alphabet size."""
        return self.distribution.shape[0]

    @property
    def num_inputs_b(self) -> int:
        """Bob's input alphabet size."""
        return self.distribution.shape[1]

    def cost_matrix(self) -> np.ndarray:
        """The signed, weighted matrix ``W = pi * (-1)^s``.

        The bias of a sign assignment ``(a, b)`` is ``a^T W b``; of a
        vector strategy, ``sum W_xy <u_x, v_y>``.
        """
        return self.distribution * np.where(self.targets == 0, 1.0, -1.0)

    # -- values -----------------------------------------------------------------

    def classical_bias(self) -> float:
        """Exact classical bias by brute force over Alice's sign vectors.

        For each of Alice's sign assignments, Bob's optimum is the
        column-wise sign match. The ``2^(nx-1)`` assignments surviving
        the global-flip symmetry are enumerated as chunked sign
        matrices, one matmul per chunk, so the cost is a handful of
        ``O(chunk * nx * ny)`` BLAS calls instead of a Python loop.
        """
        w = self.cost_matrix()
        nx = self.num_inputs_a
        if nx > 24:
            raise GameError(
                f"brute force over 2^{nx} assignments is not tractable"
            )
        best = -np.inf
        for signs in _sign_chunks(nx):
            best = max(best, float(np.abs(signs @ w).sum(axis=1).max()))
        return best

    def classical_value(self) -> float:
        """Classical win probability ``(1 + bias) / 2``."""
        return (1.0 + self.classical_bias()) / 2.0

    def best_classical_assignment(self) -> tuple[np.ndarray, np.ndarray]:
        """An optimal deterministic strategy as ±1 sign vectors.

        Enumerates the same ``2^(nx-1)`` global-flip-reduced sign
        vectors as :meth:`classical_bias` (Alice's leading sign is fixed
        to +1), so the achieved bias always equals ``classical_bias()``
        exactly; the dropped half are the jointly-flipped duplicates,
        which play identically in an XOR game.
        """
        w = self.cost_matrix()
        nx = self.num_inputs_a
        if nx > 24:
            raise GameError(
                f"brute force over 2^{nx} assignments is not tractable"
            )
        best = -np.inf
        best_signs: np.ndarray | None = None
        for signs in _sign_chunks(nx):
            values = np.abs(signs @ w).sum(axis=1)
            index = int(values.argmax())
            if values[index] > best:
                best = float(values[index])
                best_signs = signs[index]
        assert best_signs is not None
        col = best_signs @ w
        bob = np.where(col >= 0, 1.0, -1.0)
        return best_signs, bob

    def win_probability_of_bias(self, bias: float) -> float:
        """Convert a bias to a win probability."""
        return (1.0 + bias) / 2.0

    # -- conversions ----------------------------------------------------------

    def to_two_player_game(self) -> TwoPlayerGame:
        """View as a generic :class:`TwoPlayerGame` (binary outputs)."""
        targets = self.targets

        return TwoPlayerGame(
            name=self.name,
            num_inputs_a=self.num_inputs_a,
            num_inputs_b=self.num_inputs_b,
            num_outputs_a=2,
            num_outputs_b=2,
            distribution=self.distribution,
            predicate=lambda x, y, a, b: (a ^ b) == int(targets[x, y]),
        )

    def to_nonlocal_game(self):
        """View as a :class:`~repro.games.nonlocal_games.NonlocalGame`.

        The round trip ``game.to_nonlocal_game().as_xor_game()``
        recovers an equivalent XOR game; the general representation's
        ``classical_value`` delegates back to the vectorized XOR search
        for such games.
        """
        from repro.games.nonlocal_games import NonlocalGame

        return NonlocalGame.from_xor_game(self)

    @classmethod
    def chsh(cls) -> "XORGame":
        """CHSH as an XOR game (targets = x AND y)."""
        dist = np.full((2, 2), 0.25)
        targets = np.array([[0, 0], [0, 1]])
        return cls(name="chsh", distribution=dist, targets=targets)

    def __repr__(self) -> str:
        return (
            f"XORGame({self.name!r}, "
            f"inputs=({self.num_inputs_a},{self.num_inputs_b}))"
        )
