"""General (beyond-XOR) nonlocal games in the ``(prob_mat, pred_mat)`` form.

The paper's load balancers only ever play XOR games, but §4.1 notes the
colocation game "extends to more than two players" and the games it
extends *to* are not XOR games in general. This module carries the
toqito-style representation: a joint input distribution ``prob_mat``
of shape ``(nx, ny)`` and a win predicate ``pred_mat`` of shape
``(na, nb, nx, ny)`` (outputs first, matching toqito's convention), so
arbitrary finite input/output alphabets and non-parity win conditions
fit in one object. :class:`XORGame` and :class:`TwoPlayerGame` become
views onto it through the adapters below, and the pseudo-telepathy
classics — the Mermin–Peres Magic Square and the FFL game — live here
with their optimal strategies.

For the multiparty analogue (GHZ/Mermin and the k-party balancer
groups), see :class:`MultipartyNonlocalGame`.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GameError, StrategyError
from repro.games.base import TwoPlayerGame
from repro.games.strategies import BehaviorStrategy
from repro.games.xor import XORGame
from repro.quantum.gates import X as _PAULI_X
from repro.quantum.gates import Y as _PAULI_Y
from repro.quantum.gates import Z as _PAULI_Z
from repro.quantum.linalg import expand_operator

__all__ = [
    "NonlocalGame",
    "MultipartyNonlocalGame",
    "chsh_nonlocal_game",
    "ffl_game",
    "FFL_CLASSICAL_VALUE",
    "magic_square_game",
    "magic_square_optimal_strategy",
    "MAGIC_SQUARE_CLASSICAL_VALUE",
    "multi_class_colocation_game",
    "multiplayer_behavior",
    "tilted_chsh_game",
    "tilted_chsh_classical_value",
    "tilted_chsh_quantum_value",
]

#: The FFL (Fortnow–Feige–Lovász) game's classical *and* quantum value —
#: the canonical example where entanglement does not help.
FFL_CLASSICAL_VALUE = 2.0 / 3.0

#: Classical value of the Mermin–Peres Magic Square game; the quantum
#: value is exactly 1 (pseudo-telepathy).
MAGIC_SQUARE_CLASSICAL_VALUE = 8.0 / 9.0

#: Alice-assignment rows materialized per brute-force chunk of the
#: deterministic-table search (mirrors the XOR brute-force chunking).
_TABLE_CHUNK = 1 << 12

#: Refuse deterministic-table searches beyond this many assignments.
_TABLE_SEARCH_LIMIT = 1 << 24


@dataclass(frozen=True)
class NonlocalGame:
    """A two-party nonlocal game ``(prob_mat, pred_mat)``.

    Attributes:
        name: label used in reports.
        prob_mat: joint input distribution, shape ``(nx, ny)``.
        pred_mat: win predicate ``V(a, b | x, y)`` in ``[0, 1]``, shape
            ``(na, nb, nx, ny)`` — outputs first, inputs last, matching
            the toqito convention so games port over verbatim.
    """

    name: str
    prob_mat: np.ndarray
    pred_mat: np.ndarray

    def __post_init__(self) -> None:
        prob = np.asarray(self.prob_mat, dtype=float)
        pred = np.asarray(self.pred_mat, dtype=float)
        if prob.ndim != 2:
            raise GameError(f"prob_mat must be 2-D, got shape {prob.shape}")
        if pred.ndim != 4:
            raise GameError(
                f"pred_mat must have shape (na, nb, nx, ny), got {pred.shape}"
            )
        if pred.shape[2:] != prob.shape:
            raise GameError(
                f"pred_mat input block {pred.shape[2:]} != prob_mat "
                f"shape {prob.shape}"
            )
        if (prob < -1e-12).any() or abs(prob.sum() - 1.0) > 1e-9:
            raise GameError("prob_mat must be a probability distribution")
        if (pred < -1e-12).any() or (pred > 1.0 + 1e-12).any():
            raise GameError("pred_mat entries must lie in [0, 1]")
        object.__setattr__(self, "prob_mat", prob.clip(min=0.0))
        object.__setattr__(self, "pred_mat", pred.clip(min=0.0, max=1.0))
        self.prob_mat.flags.writeable = False
        self.pred_mat.flags.writeable = False

    # -- shapes ---------------------------------------------------------------

    @property
    def num_inputs(self) -> tuple[int, int]:
        """Input alphabet sizes ``(nx, ny)``."""
        return self.prob_mat.shape

    @property
    def num_outputs(self) -> tuple[int, int]:
        """Output alphabet sizes ``(na, nb)``."""
        return self.pred_mat.shape[:2]

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_predicate(
        cls,
        name: str,
        prob_mat: np.ndarray,
        predicate: Callable[[int, int, int, int], bool],
        *,
        num_outputs_a: int = 2,
        num_outputs_b: int = 2,
    ) -> "NonlocalGame":
        """Build a game from a callable ``V(x, y, a, b)`` win condition."""
        prob = np.asarray(prob_mat, dtype=float)
        if prob.ndim != 2:
            raise GameError(f"prob_mat must be 2-D, got shape {prob.shape}")
        nx, ny = prob.shape
        pred = np.zeros((num_outputs_a, num_outputs_b, nx, ny))
        for a in range(num_outputs_a):
            for b in range(num_outputs_b):
                for x in range(nx):
                    for y in range(ny):
                        if predicate(x, y, a, b):
                            pred[a, b, x, y] = 1.0
        return cls(name=name, prob_mat=prob, pred_mat=pred)

    @classmethod
    def from_two_player_game(cls, game: TwoPlayerGame) -> "NonlocalGame":
        """View a predicate-style :class:`TwoPlayerGame` in matrix form."""
        return cls.from_predicate(
            game.name,
            game.distribution,
            game.predicate,
            num_outputs_a=game.num_outputs_a,
            num_outputs_b=game.num_outputs_b,
        )

    @classmethod
    def from_xor_game(cls, game: XORGame) -> "NonlocalGame":
        """View an :class:`XORGame` ``(pi, s)`` in matrix form."""
        nx, ny = game.distribution.shape
        targets = game.targets
        pred = np.zeros((2, 2, nx, ny))
        for a in range(2):
            for b in range(2):
                pred[a, b] = (a ^ b) == targets
        return cls(
            name=game.name, prob_mat=game.distribution, pred_mat=pred
        )

    # -- adapters -------------------------------------------------------------

    def as_xor_game(self) -> XORGame | None:
        """The :class:`XORGame` this game is a view of, or ``None``.

        A game is XOR-representable when both outputs are binary, the
        predicate is 0/1, and for every input pair the win condition
        depends only on ``a XOR b``.
        """
        if self.num_outputs != (2, 2):
            return None
        pred = self.pred_mat
        if not np.isin(pred, (0.0, 1.0)).all():
            return None
        # Same-parity cells must agree, and exactly one parity must win.
        if not (
            (pred[0, 0] == pred[1, 1]).all()
            and (pred[0, 1] == pred[1, 0]).all()
            and (pred[0, 0] != pred[0, 1]).all()
        ):
            return None
        targets = np.where(pred[0, 0] == 1.0, 0, 1)
        return XORGame(
            name=self.name, distribution=self.prob_mat, targets=targets
        )

    def to_xor_game(self) -> XORGame:
        """Like :meth:`as_xor_game` but raising for non-XOR games."""
        xor = self.as_xor_game()
        if xor is None:
            raise GameError(
                f"game {self.name!r} is not XOR-representable: the win "
                "condition does not reduce to a XOR b"
            )
        return xor

    def to_two_player_game(self) -> TwoPlayerGame:
        """View as a predicate-style :class:`TwoPlayerGame`."""
        pred = self.pred_mat
        na, nb = self.num_outputs
        return TwoPlayerGame(
            name=self.name,
            num_inputs_a=self.num_inputs[0],
            num_inputs_b=self.num_inputs[1],
            num_outputs_a=na,
            num_outputs_b=nb,
            distribution=self.prob_mat,
            predicate=lambda x, y, a, b: bool(pred[a, b, x, y] >= 0.5),
        )

    # -- values ---------------------------------------------------------------

    def _score_matrix(self) -> np.ndarray:
        """``w[(x, a), (y, b)] = prob[x, y] * pred[a, b, x, y]`` flattened
        for the one-hot matmul of the deterministic-table search."""
        nx, ny = self.num_inputs
        na, nb = self.num_outputs
        # (a, b, x, y) -> (x, a, y, b)
        w = np.transpose(self.pred_mat, (2, 0, 3, 1)) * self.prob_mat[
            :, None, :, None
        ]
        return w.reshape(nx * na, ny * nb)

    def _assignment_chunks(self):
        """Yield one-hot ``(chunk, nx * na)`` blocks covering every
        deterministic Alice table, plus the table indices they encode."""
        nx, _ = self.num_inputs
        na, _ = self.num_outputs
        total = na**nx
        if total > _TABLE_SEARCH_LIMIT:
            raise GameError(
                f"deterministic-table search over {na}^{nx} Alice "
                "assignments is not tractable"
            )
        powers = na ** np.arange(nx, dtype=np.int64)
        for start in range(0, total, _TABLE_CHUNK):
            stop = min(start + _TABLE_CHUNK, total)
            patterns = np.arange(start, stop, dtype=np.int64)
            digits = (patterns[:, None] // powers) % na
            onehot = np.zeros((stop - start, nx * na))
            rows = np.repeat(np.arange(stop - start), nx)
            cols = (np.arange(nx) * na + digits).ravel()
            onehot[rows, cols] = 1.0
            yield digits, onehot

    def classical_value(self, *, method: str = "auto") -> float:
        """Exact classical value by deterministic-table search.

        For each of Alice's ``na^nx`` deterministic tables, Bob's best
        response decomposes per input ``y``; the tables are enumerated
        as chunked one-hot matrices, one matmul per chunk. Shared
        randomness cannot beat the best deterministic pair (paper §3),
        so this is the classical optimum.

        Args:
            method: ``"auto"`` routes XOR-representable games through
                the vectorized sign-vector search of
                :meth:`XORGame.classical_value` (bit-for-bit the same
                optimum, measured faster); ``"general"`` forces the
                table search; ``"xor"`` forces the XOR path and raises
                for non-XOR games.
        """
        if method not in ("auto", "general", "xor"):
            raise GameError(f"unknown classical_value method {method!r}")
        if method != "general":
            xor = self.as_xor_game()
            if method == "xor" and xor is None:
                raise GameError(
                    f"game {self.name!r} is not XOR-representable"
                )
            if xor is not None:
                return xor.classical_value()
        _, ny = self.num_inputs
        _, nb = self.num_outputs
        w = self._score_matrix()
        best = 0.0
        for _, onehot in self._assignment_chunks():
            values = (onehot @ w).reshape(-1, ny, nb).max(axis=2).sum(axis=1)
            best = max(best, float(values.max()))
        return best

    def best_classical_strategy(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """An optimal deterministic ``(alice, bob)`` table pair.

        The achieved value always equals :meth:`classical_value` exactly
        (same enumeration, same tie-breaking toward the lowest index).
        """
        _, ny = self.num_inputs
        _, nb = self.num_outputs
        w = self._score_matrix()
        best = -1.0
        best_alice: np.ndarray | None = None
        for digits, onehot in self._assignment_chunks():
            scored = (onehot @ w).reshape(-1, ny, nb)
            values = scored.max(axis=2).sum(axis=1)
            index = int(values.argmax())
            if values[index] > best:
                best = float(values[index])
                best_alice = digits[index]
        assert best_alice is not None  # alphabets are non-empty
        nx, _ = self.num_inputs
        na, _ = self.num_outputs
        onehot = np.zeros(nx * na)
        onehot[np.arange(nx) * na + best_alice] = 1.0
        bob = (onehot @ w).reshape(ny, nb).argmax(axis=1)
        return tuple(int(a) for a in best_alice), tuple(int(b) for b in bob)

    def value_of_behavior(self, behavior: np.ndarray) -> float:
        """Win probability of a conditional behavior ``p(a, b | x, y)``,
        shape ``(nx, ny, na, nb)`` (the repo's behavior convention)."""
        nx, ny = self.num_inputs
        na, nb = self.num_outputs
        behavior = np.asarray(behavior, dtype=float)
        if behavior.shape != (nx, ny, na, nb):
            raise GameError(
                f"behavior shape {behavior.shape} != {(nx, ny, na, nb)}"
            )
        weighted = np.transpose(self.pred_mat, (2, 3, 0, 1)) * behavior
        return float(
            (self.prob_mat * weighted.sum(axis=(2, 3))).sum()
        )

    def value_of_strategy(self, strategy) -> float:
        """Exact win probability of any strategy exposing ``behavior()``."""
        return self.value_of_behavior(strategy.behavior())

    def deterministic_value(
        self, assignment_a: Sequence[int], assignment_b: Sequence[int]
    ) -> float:
        """Win probability of a deterministic table pair."""
        nx, ny = self.num_inputs
        if len(assignment_a) != nx or len(assignment_b) != ny:
            raise GameError("assignment lengths must match the input alphabets")
        total = 0.0
        for x in range(nx):
            for y in range(ny):
                total += (
                    self.prob_mat[x, y]
                    * self.pred_mat[assignment_a[x], assignment_b[y], x, y]
                )
        return float(total)

    def __repr__(self) -> str:
        return (
            f"NonlocalGame({self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs})"
        )


# -- the beyond-XOR classics --------------------------------------------------


def chsh_nonlocal_game() -> NonlocalGame:
    """CHSH in ``(prob_mat, pred_mat)`` form: win iff ``a ^ b == x & y``."""
    return NonlocalGame.from_predicate(
        "chsh",
        np.full((2, 2), 0.25),
        lambda x, y, a, b: (a ^ b) == (x & y),
    )


def ffl_game() -> NonlocalGame:
    """The FFL (Fortnow–Feige–Lovász) game.

    Inputs are uniform over ``{00, 01, 10}`` (never both 1); the players
    win when ``a OR x != b OR y``. Classical value 2/3 — and, famously,
    quantum value also 2/3: entanglement does not help, which makes FFL
    the standard control next to the pseudo-telepathy games.
    """
    prob = np.array([[1 / 3, 1 / 3], [1 / 3, 0.0]])
    return NonlocalGame.from_predicate(
        "ffl", prob, lambda x, y, a, b: (a | x) != (b | y)
    )


def _magic_square_observables() -> list[list[np.ndarray]]:
    """The Mermin–Peres square of two-qubit Pauli observables.

    Rows multiply to ``+I``, columns to ``-I``, and every entry is
    transpose-invariant (``Y`` only appears as ``Y (x) Y``), so both
    players can measure the *same* operators on the canonical
    maximally entangled two-ququart state.
    """
    kron = np.kron
    i2 = np.eye(2, dtype=np.complex128)
    return [
        [kron(_PAULI_Z, i2), kron(i2, _PAULI_Z), kron(_PAULI_Z, _PAULI_Z)],
        [kron(i2, _PAULI_X), kron(_PAULI_X, i2), kron(_PAULI_X, _PAULI_X)],
        [
            -kron(_PAULI_Z, _PAULI_X),
            -kron(_PAULI_X, _PAULI_Z),
            kron(_PAULI_Y, _PAULI_Y),
        ],
    ]


def _parity_bits(index: int, parity: int) -> tuple[int, int, int]:
    """Decode an output index into the 3-bit cell row it encodes.

    The first two bits are the index's bits; the third is forced by the
    parity constraint (Alice's rows are even, Bob's columns odd).
    """
    b0, b1 = (index >> 1) & 1, index & 1
    return b0, b1, (b0 ^ b1) ^ parity


def magic_square_game() -> NonlocalGame:
    """The Mermin–Peres Magic Square game.

    Alice receives a row ``x``, Bob a column ``y`` (uniform over the 9
    pairs). Alice returns one of the 4 even-parity 3-bit fillings of her
    row, Bob one of the 4 odd-parity fillings of his column, and they
    win when the shared cell ``(x, y)`` agrees. Classical value 8/9;
    measuring the Pauli square on two shared Bell pairs wins always
    (pseudo-telepathy).
    """

    def predicate(x: int, y: int, a: int, b: int) -> bool:
        return _parity_bits(a, 0)[y] == _parity_bits(b, 1)[x]

    return NonlocalGame.from_predicate(
        "magic-square",
        np.full((3, 3), 1.0 / 9.0),
        predicate,
        num_outputs_a=4,
        num_outputs_b=4,
    )


def _joint_projectors(
    first: np.ndarray, second: np.ndarray
) -> list[np.ndarray]:
    """Projectors of the 4 joint outcomes of two commuting ±1 observables,
    indexed by the 2-bit outcome (bit = 1 for the −1 eigenspace)."""
    eye = np.eye(first.shape[0], dtype=np.complex128)
    out = []
    for index in range(4):
        s0 = 1.0 - 2.0 * ((index >> 1) & 1)
        s1 = 1.0 - 2.0 * (index & 1)
        out.append((eye + s0 * first) / 2.0 @ ((eye + s1 * second) / 2.0))
    return out


def magic_square_optimal_strategy() -> BehaviorStrategy:
    """The perfect Magic Square strategy as an exact behavior.

    Alice and Bob share two Bell pairs — equivalently the canonical
    maximally entangled state ``(1/2) sum_k |k>|k>`` of two ququarts —
    and each measures the joint eigenbasis of their row's (column's)
    first two commuting square entries; the third outcome bit is fixed
    by the row/column parity. The returned strategy's behavior wins
    :func:`magic_square_game` with probability exactly 1.
    """
    dim = 4
    psi = np.zeros(dim * dim, dtype=np.complex128)
    for k in range(dim):
        psi[k * dim + k] = 0.5
    rho = np.outer(psi, psi.conj())
    square = _magic_square_observables()

    def expanded(projectors, targets):
        return [expand_operator(p, targets, 4) for p in projectors]

    behavior = np.zeros((3, 3, 4, 4))
    for x in range(3):
        alice = expanded(
            _joint_projectors(square[x][0], square[x][1]), [0, 1]
        )
        for y in range(3):
            bob = expanded(
                _joint_projectors(square[0][y], square[1][y]), [2, 3]
            )
            for a in range(4):
                for b in range(4):
                    behavior[x, y, a, b] = float(
                        np.real(np.trace(rho @ alice[a] @ bob[b]))
                    )
    return BehaviorStrategy(behavior)


def multi_class_colocation_game(num_classes: int) -> NonlocalGame:
    """The colocation game over ``num_classes`` task classes.

    Class 0 is type-E; classes ``1..C-1`` are mutually incompatible
    type-C subtypes (the §4.1 caveat). Paired balancers win when they
    colocate (equal outputs) exactly on matching type-C subtypes and
    separate otherwise. For ``num_classes=2`` this is precisely the
    CHSH colocation game (classical value 3/4). The win condition
    depends only on ``a XOR b``, so :meth:`NonlocalGame.as_xor_game`
    applies and the whole XOR machinery (Tsirelson SDP, alternating
    ascent) carries over to the multi-class workload.
    """
    if num_classes < 2:
        raise GameError("need at least two task classes")
    prob = np.full((num_classes, num_classes), 1.0 / num_classes**2)
    return NonlocalGame.from_predicate(
        f"colocation-{num_classes}class",
        prob,
        lambda x, y, a, b: (a ^ b) == (0 if (x == y and x >= 1) else 1),
    )


def tilted_chsh_game(beta: float) -> NonlocalGame:
    """The tilted CHSH family (Acín–Massar–Pironio) as a nonlocal game.

    The Bell functional ``I_beta = beta <A_0> + <A_0 B_0> + <A_0 B_1> +
    <A_1 B_0> - <A_1 B_1>`` has classical maximum ``2 + beta`` and
    quantum maximum ``sqrt(8 + 2 beta^2)`` for ``0 <= beta < 2``.
    Rescaling into a win probability with fractional predicate values::

        V(a, b | x, y) = (1 + (s_xy (-1)^(a+b)
                          + (beta/2) [x == 0] (-1)^a) / (1 + beta/2)) / 2

    over uniform inputs (``s_xy = -1`` only at ``x = y = 1``) gives
    game value ``1/2 + I_beta / (8 (1 + beta/2))`` for any
    no-signaling behavior. ``beta = 0`` recovers plain CHSH; the
    marginal term makes the game non-XOR-representable for
    ``beta > 0``, so it exercises the see-saw/NPA path with
    family-closed-form cross-checks (:func:`tilted_chsh_classical_value`,
    :func:`tilted_chsh_quantum_value`).
    """
    if not 0.0 <= beta < 2.0:
        raise GameError("tilted CHSH requires 0 <= beta < 2")
    scale = 1.0 + beta / 2.0
    pred = np.empty((2, 2, 2, 2))
    for x in range(2):
        for y in range(2):
            sign_xy = -1.0 if x == 1 and y == 1 else 1.0
            for a in range(2):
                for b in range(2):
                    correlator = sign_xy * (-1.0) ** (a + b)
                    marginal = (beta / 2.0) * (-1.0) ** a if x == 0 else 0.0
                    pred[a, b, x, y] = (
                        1.0 + (correlator + marginal) / scale
                    ) / 2.0
    return NonlocalGame(
        name=f"tilted-chsh-{beta:g}",
        prob_mat=np.full((2, 2), 0.25),
        pred_mat=pred,
    )


def tilted_chsh_classical_value(beta: float) -> float:
    """Closed-form classical value of :func:`tilted_chsh_game`."""
    return 0.5 + (2.0 + beta) / (8.0 * (1.0 + beta / 2.0))


def tilted_chsh_quantum_value(beta: float) -> float:
    """Closed-form quantum value of :func:`tilted_chsh_game`."""
    return 0.5 + math.sqrt(8.0 + 2.0 * beta**2) / (8.0 * (1.0 + beta / 2.0))


# -- multiparty games ---------------------------------------------------------


@dataclass(frozen=True)
class MultipartyNonlocalGame:
    """A ``k``-party nonlocal game in dense tensor form.

    Attributes:
        name: label used in reports.
        prob_tensor: joint input distribution over the ``k`` input
            alphabets, shape ``(n_1, ..., n_k)``.
        pred_tensor: win predicate, shape ``(m_1, ..., m_k, n_1, ...,
            n_k)`` — the ``k`` output axes first, then the ``k`` input
            axes (the same outputs-first convention as
            :class:`NonlocalGame`).
    """

    name: str
    prob_tensor: np.ndarray
    pred_tensor: np.ndarray

    def __post_init__(self) -> None:
        prob = np.asarray(self.prob_tensor, dtype=float)
        pred = np.asarray(self.pred_tensor, dtype=float)
        k = prob.ndim
        if k < 2:
            raise GameError("need at least two parties")
        if pred.ndim != 2 * k:
            raise GameError(
                f"pred_tensor must have {2 * k} axes (outputs then "
                f"inputs), got {pred.ndim}"
            )
        if pred.shape[k:] != prob.shape:
            raise GameError(
                f"pred_tensor input block {pred.shape[k:]} != prob_tensor "
                f"shape {prob.shape}"
            )
        if (prob < -1e-12).any() or abs(prob.sum() - 1.0) > 1e-9:
            raise GameError("prob_tensor must be a probability distribution")
        if (pred < -1e-12).any() or (pred > 1.0 + 1e-12).any():
            raise GameError("pred_tensor entries must lie in [0, 1]")
        object.__setattr__(self, "prob_tensor", prob.clip(min=0.0))
        object.__setattr__(self, "pred_tensor", pred.clip(min=0.0, max=1.0))
        self.prob_tensor.flags.writeable = False
        self.pred_tensor.flags.writeable = False

    @property
    def num_players(self) -> int:
        """Number of parties."""
        return self.prob_tensor.ndim

    @property
    def num_inputs(self) -> tuple[int, ...]:
        """Per-player input alphabet sizes."""
        return self.prob_tensor.shape

    @property
    def num_outputs(self) -> tuple[int, ...]:
        """Per-player output alphabet sizes."""
        return self.pred_tensor.shape[: self.num_players]

    @classmethod
    def from_xor_game(cls, game) -> "MultipartyNonlocalGame":
        """View a :class:`~repro.games.multiplayer.MultiplayerXORGame`.

        Input symbols are mapped to dense indices per player (sorted
        symbol order); input tuples outside the game's support get zero
        probability and a never-winning predicate row.
        """
        k = game.num_players
        alphabets = [game.input_alphabet(p) for p in range(k)]
        index = [
            {symbol: i for i, symbol in enumerate(alpha)}
            for alpha in alphabets
        ]
        in_shape = tuple(len(alpha) for alpha in alphabets)
        prob = np.zeros(in_shape)
        targets = np.zeros(in_shape, dtype=int)
        support = np.zeros(in_shape, dtype=bool)
        for p, inp, target in zip(
            game.probabilities, game.inputs, game.targets
        ):
            cell = tuple(index[player][inp[player]] for player in range(k))
            prob[cell] += p
            targets[cell] = target
            support[cell] = True
        pred = np.zeros((2,) * k + in_shape)
        for outputs in itertools.product((0, 1), repeat=k):
            parity = 0
            for bit in outputs:
                parity ^= bit
            pred[outputs] = support & (targets == parity)
        return cls(name=game.name, prob_tensor=prob, pred_tensor=pred)

    # -- values ---------------------------------------------------------------

    def _iter_fixed_tables(self):
        """Every joint deterministic table of players ``0..k-2``."""
        k = self.num_players
        spaces = [
            list(
                itertools.product(
                    range(self.num_outputs[p]), repeat=self.num_inputs[p]
                )
            )
            for p in range(k - 1)
        ]
        total = math.prod(len(s) for s in spaces)
        if total > _TABLE_SEARCH_LIMIT:
            raise GameError(
                "deterministic-table search over "
                f"{total} leading-player assignments is not tractable"
            )
        return itertools.product(*spaces)

    def _last_player_scores(self, tables) -> np.ndarray:
        """``score[z, o]`` for the last player given the fixed tables."""
        k = self.num_players
        n_last, m_last = self.num_inputs[-1], self.num_outputs[-1]
        score = np.zeros((n_last, m_last))
        for inp in np.ndindex(*self.num_inputs):
            weight = self.prob_tensor[inp]
            if weight == 0.0:
                continue
            outs = tuple(tables[p][inp[p]] for p in range(k - 1))
            for o in range(m_last):
                score[inp[-1], o] += (
                    weight * self.pred_tensor[outs + (o,) + inp]
                )
        return score

    def classical_value(self) -> float:
        """Exact classical value by deterministic-table search.

        Enumerates joint tables for the first ``k - 1`` players; the
        last player's best response decomposes per input symbol.
        Exponential in the leading players' alphabet sizes — fine for
        the promise games studied here (Mermin up to ``n = 5`` is
        instant).
        """
        best = 0.0
        for tables in self._iter_fixed_tables():
            value = float(self._last_player_scores(tables).max(axis=1).sum())
            best = max(best, value)
        return best

    def best_classical_strategy(self) -> tuple[tuple[int, ...], ...]:
        """An optimal deterministic table per player.

        The returned tuple has one output table per player (entry ``i``
        is the output on input symbol ``i``); the achieved value equals
        :meth:`classical_value` exactly.
        """
        best = -1.0
        best_tables: tuple[tuple[int, ...], ...] | None = None
        for tables in self._iter_fixed_tables():
            score = self._last_player_scores(tables)
            value = float(score.max(axis=1).sum())
            if value > best:
                best = value
                last = tuple(int(o) for o in score.argmax(axis=1))
                best_tables = tuple(tables) + (last,)
        assert best_tables is not None  # alphabets are non-empty
        return best_tables

    def deterministic_value(
        self, tables: Sequence[Sequence[int]]
    ) -> float:
        """Win probability of one deterministic table per player."""
        if len(tables) != self.num_players:
            raise GameError("need one table per player")
        total = 0.0
        for inp in np.ndindex(*self.num_inputs):
            weight = self.prob_tensor[inp]
            if weight == 0.0:
                continue
            outs = tuple(tables[p][inp[p]] for p in range(self.num_players))
            total += weight * self.pred_tensor[outs + inp]
        return float(total)

    def value_of_behavior(self, behavior: np.ndarray) -> float:
        """Win probability of a behavior ``p(outputs | inputs)``, shape
        ``num_inputs + num_outputs`` (inputs first — the sampling-table
        convention of :func:`repro.lb.policies.behavior_sampling_tables`)."""
        k = self.num_players
        expected = self.num_inputs + self.num_outputs
        behavior = np.asarray(behavior, dtype=float)
        if behavior.shape != expected:
            raise GameError(
                f"behavior shape {behavior.shape} != {expected}"
            )
        # (outputs, inputs) -> (inputs, outputs)
        pred = np.transpose(
            self.pred_tensor, tuple(range(k, 2 * k)) + tuple(range(k))
        )
        wins = (pred * behavior).sum(axis=tuple(range(k, 2 * k)))
        return float((self.prob_tensor * wins).sum())

    def value_of_strategy(self, strategy) -> float:
        """Exact win probability of a k-party strategy exposing
        ``behavior()`` (e.g. a
        :class:`~repro.games.multiplayer.MultiplayerQuantumStrategy`)."""
        return self.value_of_behavior(strategy.behavior())

    def __repr__(self) -> str:
        return (
            f"MultipartyNonlocalGame({self.name!r}, "
            f"inputs={self.num_inputs}, outputs={self.num_outputs})"
        )


def multiplayer_behavior(strategy, alphabets: Sequence[int]) -> np.ndarray:
    """Dense behavior tensor of a k-party strategy over integer inputs.

    ``alphabets`` gives the per-player input alphabet size; inputs are
    the integers ``0..n_p - 1``. The result has shape
    ``tuple(alphabets) + (2,) * k`` — inputs first, then one binary
    output axis per player — ready for
    :func:`repro.lb.policies.behavior_sampling_tables`.
    """
    k = strategy.num_players
    if len(alphabets) != k:
        raise StrategyError(
            f"{len(alphabets)} alphabets for {k} players"
        )
    in_shape = tuple(int(n) for n in alphabets)
    if any(n < 1 for n in in_shape):
        raise StrategyError("input alphabets must be non-empty")
    out = np.zeros(in_shape + (2,) * k)
    for inputs in np.ndindex(*in_shape):
        out[inputs] = strategy.joint_distribution(inputs)
    return out
