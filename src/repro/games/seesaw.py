"""See-saw lower bounds on quantum values of general nonlocal games.

The complement of :mod:`repro.games.npa`: an alternating-ascent
optimizer over a shared pure state and per-input POVM measurements on
``C^dim x C^dim`` for any :class:`~repro.games.nonlocal_games.NonlocalGame`.
Each sweep is a sequence of exact coordinate maximizations, so the
objective is monotone non-decreasing:

* **state step** — the optimal state for fixed measurements is the top
  eigenvector of the win operator (one ``eigh``);
* **measurement step** — with everything else fixed, each input's
  optimal POVM maximizes ``sum_o Tr(E_o M_o)``. For binary outputs the
  exact optimum projects onto the positive eigenspace of ``M_0 - M_1``,
  computed for *all* inputs of a party in one stacked ``eigh``. For
  larger alphabets the same split is applied to outcome pairs
  (re-splitting ``S = E_o + E_o'`` optimally inside its support),
  batched over inputs per pair — monotone coordinate ascent built from
  the identical eigenvalue primitive.

Real symmetric operators are used throughout: a real see-saw is still
a valid quantum strategy (possibly needing a dimension doubling to
match complex optima, hence the ``dim`` knob).

The returned value is **certified**: the behavior is sanitized through
the backend's batched PSD projection
(:func:`repro.sdp.projections.project_psd_batch`), clipped, and
renormalized, and the reported value is
``game.value_of_behavior(behavior)`` of that explicit behavior — a
true achievable lower bound, independent of optimizer internals.

Restart initializations draw from named
:meth:`repro.sim.rng.RandomStreams.fresh` substreams, so results are
bit-identical regardless of process placement (``--jobs``) and a run
with more restarts reproduces the earlier restarts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.games.nonlocal_games import NonlocalGame
from repro.games.strategies import BehaviorStrategy
from repro.obs import metrics as _metrics
from repro.obs.spans import span
from repro.sdp.projections import project_psd_batch, symmetrize_batch
from repro.sim.rng import RandomStreams

__all__ = ["SeesawResult", "seesaw_lower_bound", "random_projective_povms"]


@dataclass(frozen=True)
class SeesawResult:
    """Best strategy found by the see-saw, with its certified value.

    Attributes:
        value: ``game.value_of_behavior(behavior)`` — a true lower
            bound on the quantum value.
        behavior: explicit ``(nx, ny, na, nb)`` behavior of the
            strategy (non-negative, rows normalized).
        state: shared pure state on ``C^(dim*dim)``, Alice index first.
        alice_effects: ``(nx, na, dim, dim)`` POVM effects.
        bob_effects: ``(ny, nb, dim, dim)`` POVM effects.
        dim: local Hilbert-space dimension per party.
        restarts: number of random restarts performed.
        iterations: total see-saw sweeps across all restarts.
        converged: whether the best restart's sweep improvements
            dropped below tolerance before its iteration cap.
        restart_values: raw objective per restart, in restart order
            (useful for monotonicity checks — restart ``r`` is
            reproduced exactly by any run with ``restarts > r``).
    """

    value: float
    behavior: np.ndarray
    state: np.ndarray
    alice_effects: np.ndarray
    bob_effects: np.ndarray
    dim: int
    restarts: int
    iterations: int
    converged: bool
    restart_values: tuple[float, ...]

    def strategy(self) -> BehaviorStrategy:
        """The found behavior as a playable strategy object."""
        return BehaviorStrategy(self.behavior)


def random_projective_povms(
    num_inputs: int, num_outputs: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """Random projective POVMs, one per input: ``(num_inputs,
    num_outputs, dim, dim)``.

    Each input gets a Haar-ish random orthogonal basis (QR of a
    Gaussian matrix) whose projectors are dealt to outcomes via a
    random permutation of the balanced outcome multiset, so no outcome
    hoards the whole basis (an all-in-one deal yields the trivial POVM
    ``{I, 0, ...}`` — a deterministic fixed point the see-saw cannot
    escape); effects sum to the identity by construction. When
    ``dim < num_outputs`` some outcomes necessarily get the zero
    effect — a valid (degenerate) POVM.
    """
    effects = np.zeros((num_inputs, num_outputs, dim, dim))
    for x in range(num_inputs):
        gauss = rng.standard_normal((dim, dim))
        basis, _ = np.linalg.qr(gauss)
        outcomes = rng.permutation(
            np.resize(np.arange(num_outputs), dim)
        )
        for k in range(dim):
            vec = basis[:, k]
            effects[x, outcomes[k]] += np.outer(vec, vec)
    return effects


def _optimal_binary_split(operators: np.ndarray) -> np.ndarray:
    """Exact optimal binary POVMs for a stack of objective pairs.

    ``operators`` is ``(B, 2, d, d)``; returns effects of the same
    shape where slice ``i`` maximizes ``Tr(E_0 M_0) + Tr(E_1 M_1)``:
    ``E_0`` projects onto the positive eigenspace of ``M_0 - M_1`` —
    one stacked eigenvalue problem for the whole batch.
    """
    d = operators.shape[-1]
    diff = symmetrize_batch(operators[:, 0] - operators[:, 1])
    eigvals, eigvecs = np.linalg.eigh(diff)
    positive = (eigvals > 0.0).astype(float)
    e0 = np.einsum("bik,bk,bjk->bij", eigvecs, positive, eigvecs)
    out = np.empty_like(operators)
    out[:, 0] = e0
    out[:, 1] = np.eye(d)[None] - e0
    return out


def _pairwise_exchange(effects: np.ndarray, operators: np.ndarray) -> np.ndarray:
    """One monotone sweep of pairwise POVM re-splits for ``> 2`` outcomes.

    For each outcome pair ``(o, o')`` the combined effect
    ``S = E_o + E_o'`` is re-split optimally within its support:
    with ``D = S^(1/2) (M_o - M_o') S^(1/2)``, the optimum is
    ``E_o = S^(1/2) P_+(D) S^(1/2)`` where ``P_+`` projects onto the
    positive eigenspace. Every pair is a batched eigenvalue problem
    across inputs; each re-split cannot decrease the objective.
    """
    num_outputs = effects.shape[1]
    for o in range(num_outputs):
        for op in range(o + 1, num_outputs):
            combined = symmetrize_batch(effects[:, o] + effects[:, op])
            eigvals, eigvecs = np.linalg.eigh(combined)
            root = np.einsum(
                "bik,bk,bjk->bij",
                eigvecs,
                np.sqrt(eigvals.clip(min=0.0)),
                eigvecs,
            )
            diff = symmetrize_batch(
                root @ (operators[:, o] - operators[:, op]) @ root
            )
            dvals, dvecs = np.linalg.eigh(diff)
            positive = (dvals > 0.0).astype(float)
            projector = np.einsum("bik,bk,bjk->bij", dvecs, positive, dvecs)
            first = symmetrize_batch(root @ projector @ root)
            effects[:, o] = first
            effects[:, op] = combined - first
    return effects


def _optimal_povms(effects: np.ndarray, operators: np.ndarray) -> np.ndarray:
    """Maximize ``sum_o Tr(E_o M_o)`` per input, monotonically."""
    if effects.shape[1] == 2:
        return _optimal_binary_split(operators)
    return _pairwise_exchange(effects, operators)


def _win_operator(
    game: NonlocalGame, alice: np.ndarray, bob: np.ndarray
) -> np.ndarray:
    """``sum_xyab prob * pred * (A_x^a kron B_y^b)`` on the joint space."""
    weighted_bob = np.einsum(
        "xy,abxy,ybkl->xakl", game.prob_mat, game.pred_mat, bob
    )
    dim = alice.shape[-1]
    joint = np.einsum("xaij,xakl->ikjl", alice, weighted_bob)
    return joint.reshape(dim * dim, dim * dim)


def _behavior_of(
    game: NonlocalGame,
    state_mat: np.ndarray,
    alice: np.ndarray,
    bob: np.ndarray,
    backend=None,
) -> np.ndarray:
    """Explicit behavior of (state, POVMs), sanitized to a valid one.

    Effects pass through the backend's batched PSD projection to
    scrub eigenvalue-level negativity before probabilities are formed;
    the rows are then clipped and renormalized exactly.
    """
    nx, ny = game.num_inputs
    na, nb = game.num_outputs
    dim = alice.shape[-1]
    alice_flat = project_psd_batch(
        symmetrize_batch(alice).reshape(nx * na, dim, dim), backend=backend
    ).reshape(nx, na, dim, dim)
    bob_flat = project_psd_batch(
        symmetrize_batch(bob).reshape(ny * nb, dim, dim), backend=backend
    ).reshape(ny, nb, dim, dim)
    # p(a,b|x,y) = Tr(P^T A_x^a P B_y^b) for state matrix P.
    transported = np.einsum(
        "ij,xajk,kl->xail", state_mat.T, alice_flat, state_mat
    )
    behavior = np.einsum("xail,ybli->xyab", transported, bob_flat)
    behavior = behavior.clip(min=0.0)
    sums = behavior.sum(axis=(2, 3), keepdims=True)
    if (sums <= 0.0).any():
        raise GameError("see-saw produced a degenerate behavior")
    return behavior / sums


def seesaw_lower_bound(
    game: NonlocalGame,
    *,
    dim: int = 2,
    restarts: int = 5,
    iterations: int = 200,
    tolerance: float = 1e-10,
    seed: int = 0,
    streams: RandomStreams | None = None,
    backend=None,
) -> SeesawResult:
    """Certified lower bound on the quantum value of ``game``.

    Args:
        game: any two-player nonlocal game.
        dim: local dimension per party (2 suffices for the qubit
            classics; Magic Square needs 4).
        restarts: independent random initializations; the best is kept.
            Restart ``r`` draws from the ``fresh`` substream named
            ``seesaw:{name}:dim={dim}:restart={r}``, so verdicts are
            bit-identical across ``--jobs`` and monotone in
            ``restarts``.
        iterations: sweep cap per restart.
        tolerance: stop a restart when a sweep improves the objective
            by less than this.
        seed: root seed (ignored when ``streams`` is given).
        streams: optional shared :class:`RandomStreams`; lets callers
            tie the see-saw into an existing deterministic sweep.
        backend: array backend (name or instance) for the batched PSD
            sanitization of the final behavior.
    """
    if dim < 2:
        raise GameError("see-saw needs local dimension >= 2")
    if restarts < 1:
        raise GameError("see-saw needs at least one restart")
    nx, ny = game.num_inputs
    na, nb = game.num_outputs
    if streams is None:
        streams = RandomStreams(seed)

    best: tuple[float, np.ndarray, np.ndarray, np.ndarray, bool] | None = None
    restart_values: list[float] = []
    total_sweeps = 0
    with span(
        "seesaw.optimize",
        game=game.name,
        dim=dim,
        restarts=restarts,
    ):
        for restart in range(restarts):
            rng = streams.fresh(
                f"seesaw:{game.name}:dim={dim}:restart={restart}"
            )
            alice = random_projective_povms(nx, na, dim, rng)
            bob = random_projective_povms(ny, nb, dim, rng)
            value = -np.inf
            state = None
            converged = False
            for _ in range(iterations):
                total_sweeps += 1
                win = _win_operator(game, alice, bob)
                eigvals, eigvecs = np.linalg.eigh((win + win.T) / 2.0)
                new_value = float(eigvals[-1])
                state = eigvecs[:, -1]
                state_mat = state.reshape(dim, dim)
                # Bob-side objective operators: M_y^b = sum_xa prob *
                # pred * P^T A_x^a P, then the batched POVM optimum.
                transported = np.einsum(
                    "ij,xajk,kl->xail", state_mat.T, alice, state_mat
                )
                bob_ops = np.einsum(
                    "xy,abxy,xakl->ybkl",
                    game.prob_mat,
                    game.pred_mat,
                    transported,
                )
                bob = _optimal_povms(bob, bob_ops)
                # Alice-side: N_x^a = sum_yb prob * pred * P B_y^b P^T.
                carried = np.einsum(
                    "ij,ybjk,kl->ybil", state_mat, bob, state_mat.T
                )
                alice_ops = np.einsum(
                    "xy,abxy,ybkl->xakl",
                    game.prob_mat,
                    game.pred_mat,
                    carried,
                )
                alice = _optimal_povms(alice, alice_ops)
                if new_value - value < tolerance:
                    value = max(value, new_value)
                    converged = True
                    break
                value = new_value
            restart_values.append(value)
            if best is None or value > best[0]:
                best = (value, state, alice.copy(), bob.copy(), converged)

    registry = _metrics.get_registry()
    registry.counter("seesaw.restarts").inc(restarts)
    registry.counter("seesaw.iterations").inc(total_sweeps)
    value, state, alice, bob, converged = best
    state_mat = state.reshape(dim, dim)
    behavior = _behavior_of(game, state_mat, alice, bob, backend=backend)
    certified = float(game.value_of_behavior(behavior))
    return SeesawResult(
        value=certified,
        behavior=behavior,
        state=state,
        alice_effects=alice,
        bob_effects=bob,
        dim=dim,
        restarts=restarts,
        iterations=total_sweeps,
        converged=converged,
        restart_values=tuple(restart_values),
    )
