"""Quantum values of XOR games via Tsirelson's theorem.

Tsirelson proved the quantum bias of an XOR game equals::

    max  sum_xy W_xy <u_x, v_y>   over unit vectors u_x, v_y,

a semidefinite program over the joint Gram matrix. This module computes
it with a fast alternating heuristic (each step is one matrix product)
warm-starting the rigorous ADMM SDP solve, and can convert the optimal
vectors into an explicit quantum strategy — shared maximally entangled
state plus anticommuting-observable measurements (the construction used
in Cleve-Hoyer-Toner-Watrous [18]).

This is the machinery behind Fig 3: a random XOR game has a quantum
advantage iff its quantum bias exceeds its classical bias.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GameError
from repro.games.strategies import BinaryObservable, QuantumStrategy
from repro.games.xor import XORGame
from repro.quantum.gates import pauli
from repro.quantum.state import StateVector
from repro.sdp import SDPResult, gram_vectors, solve_diagonal_sdp

__all__ = [
    "XORValue",
    "xor_quantum_bias",
    "xor_quantum_value",
    "has_quantum_advantage",
    "alternating_bias_lower_bound",
    "tsirelson_strategy",
    "anticommuting_observables",
]


@dataclass(frozen=True)
class XORValue:
    """Computed values of an XOR game.

    Attributes:
        classical_bias: exact classical bias (brute force).
        quantum_bias: SDP optimum (primal, feasible → true lower bound).
        quantum_bias_upper: rigorous dual upper bound on the quantum bias.
        sdp: the raw solver result for diagnostics.
    """

    classical_bias: float
    quantum_bias: float
    quantum_bias_upper: float
    sdp: SDPResult

    @property
    def classical_value(self) -> float:
        """Classical win probability."""
        return (1.0 + self.classical_bias) / 2.0

    @property
    def quantum_value(self) -> float:
        """Quantum win probability."""
        return (1.0 + self.quantum_bias) / 2.0

    @property
    def advantage(self) -> float:
        """Quantum-minus-classical win probability gap."""
        return self.quantum_value - self.classical_value


def _bias_cost_matrix(game: XORGame) -> np.ndarray:
    """Block cost matrix whose diagonal-SDP optimum is the quantum bias.

    Vectors are stacked ``[u_1..u_nx, v_1..v_ny]``; the bias
    ``sum W_xy <u_x, v_y>`` equals ``<C, X>`` for the Gram matrix ``X``
    with ``C`` holding ``W/2`` in the off-diagonal blocks.
    """
    w = game.cost_matrix()
    nx, ny = w.shape
    c = np.zeros((nx + ny, nx + ny))
    c[:nx, nx:] = w / 2.0
    c[nx:, :nx] = w.T / 2.0
    return c


def alternating_bias_lower_bound(
    game: XORGame,
    *,
    restarts: int = 3,
    iterations: int = 200,
    seed: int = 0,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Fast heuristic for the quantum bias (vector strategy ascent).

    Alternates ``u_x <- normalize(sum_y W_xy v_y)`` and the symmetric
    update; monotone in the objective. Returns the best
    ``(bias, U, V)`` over random restarts. A lower bound only — the SDP
    certifies optimality.
    """
    w = game.cost_matrix()
    nx, ny = w.shape
    dim = nx + ny
    rng = np.random.default_rng(seed)
    best_bias = -np.inf
    best_u = best_v = None
    for _ in range(max(1, restarts)):
        v = rng.normal(size=(ny, dim))
        v /= np.linalg.norm(v, axis=1, keepdims=True)
        u = np.zeros((nx, dim))
        bias = -np.inf
        for _ in range(iterations):
            u = w @ v
            norms = np.linalg.norm(u, axis=1, keepdims=True)
            u = np.divide(u, norms, out=np.zeros_like(u), where=norms > 1e-15)
            v = w.T @ u
            norms = np.linalg.norm(v, axis=1, keepdims=True)
            v = np.divide(v, norms, out=np.zeros_like(v), where=norms > 1e-15)
            new_bias = float(np.sum(w * (u @ v.T)))
            if new_bias - bias < 1e-12:
                bias = new_bias
                break
            bias = new_bias
        if bias > best_bias:
            best_bias, best_u, best_v = bias, u.copy(), v.copy()
    assert best_u is not None and best_v is not None
    return best_bias, best_u, best_v


def xor_quantum_bias(
    game: XORGame, *, tolerance: float = 1e-8
) -> tuple[float, SDPResult]:
    """Quantum bias of an XOR game via the Tsirelson SDP.

    Warm-starts from the alternating heuristic's Gram matrix.
    """
    cost = _bias_cost_matrix(game)
    _, u, v = alternating_bias_lower_bound(game)
    stacked = np.vstack([u, v])
    warm = stacked @ stacked.T
    result = solve_diagonal_sdp(
        cost, tolerance=tolerance, warm_start=warm
    )
    return result.objective, result


def xor_quantum_value(game: XORGame, *, tolerance: float = 1e-8) -> XORValue:
    """Classical and quantum values of an XOR game, with certificates."""
    classical = game.classical_bias()
    quantum, sdp = xor_quantum_bias(game, tolerance=tolerance)
    return XORValue(
        classical_bias=classical,
        quantum_bias=max(quantum, classical),
        quantum_bias_upper=sdp.upper_bound,
        sdp=sdp,
    )


def has_quantum_advantage(
    game: XORGame, *, threshold: float = 1e-5, tolerance: float = 1e-8
) -> bool:
    """True when the quantum bias provably exceeds the classical bias.

    Uses the feasible primal value (a genuine achievable bias), so a True
    answer is a certificate; games within ``threshold`` of the classical
    bias count as no-advantage, matching Fig 3's detection rule.
    """
    value = xor_quantum_value(game, tolerance=tolerance)
    return value.quantum_bias > value.classical_bias + threshold


def anticommuting_observables(count: int) -> list[np.ndarray]:
    """``count`` pairwise-anticommuting binary observables (Jordan-Wigner).

    Uses ``ceil(count / 2)`` qubits: generator ``2j`` is ``Z^j X I...``,
    generator ``2j+1`` is ``Z^j Y I...``. Each squares to identity and
    every pair anticommutes, so ``sum_i c_i G_i`` is a valid binary
    observable for any unit vector ``c``.
    """
    if count < 1:
        raise GameError("need at least one observable")
    num_qubits = (count + 1) // 2
    observables = []
    for index in range(count):
        j = index // 2
        letter = "X" if index % 2 == 0 else "Y"
        label = "Z" * j + letter + "I" * (num_qubits - j - 1)
        observables.append(pauli(label))
    return observables


def tsirelson_strategy(
    game: XORGame,
    *,
    tolerance: float = 1e-8,
    rank_cutoff: float = 1e-6,
) -> QuantumStrategy:
    """Explicit optimal quantum strategy for an XOR game.

    Solves the Tsirelson SDP, extracts Gram vectors, and realizes them as
    binary observables ``A_x = sum_i u_xi G_i`` / ``B_y = sum_i v_yi
    G_i^T`` on a maximally entangled state, which reproduces the SDP
    correlations exactly: ``<psi| A (x) B^T |psi> = <u, v>``.
    """
    _, result = xor_quantum_bias(game, tolerance=tolerance)
    nx = game.num_inputs_a
    vectors = gram_vectors(result.matrix, tolerance=rank_cutoff, normalize=True)
    u, v = vectors[:nx], vectors[nx:]
    rank = vectors.shape[1]
    generators = anticommuting_observables(rank)
    alice = [
        BinaryObservable(_combine(generators, u[x])) for x in range(nx)
    ]
    bob = [
        BinaryObservable(_combine(generators, v[y]).T)
        for y in range(game.num_inputs_b)
    ]
    num_qubits = (rank + 1) // 2
    dim = 1 << num_qubits
    amplitudes = np.zeros(dim * dim, dtype=np.complex128)
    for i in range(dim):
        amplitudes[i * dim + i] = 1.0 / math.sqrt(dim)
    state = StateVector(amplitudes)
    return QuantumStrategy(state, alice=alice, bob=bob)


def _combine(generators: list[np.ndarray], coefficients: np.ndarray) -> np.ndarray:
    out = np.zeros_like(generators[0])
    for coeff, gen in zip(coefficients, generators):
        out = out + coeff * gen
    return out
