"""Two-player non-local games: input distribution + win predicate.

A game is played by two isolated parties (the paper's load balancers). A
referee draws inputs ``(x, y)`` from a joint distribution, hands ``x`` to
Alice and ``y`` to Bob, receives outputs ``(a, b)``, and declares a win
when ``predicate(x, y, a, b)`` holds. Strategies for playing games live in
:mod:`repro.games.strategies`.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GameError

__all__ = ["TwoPlayerGame", "uniform_distribution"]


def uniform_distribution(num_x: int, num_y: int) -> np.ndarray:
    """Uniform joint input distribution over ``num_x * num_y`` pairs."""
    if num_x < 1 or num_y < 1:
        raise GameError("input alphabets must be non-empty")
    return np.full((num_x, num_y), 1.0 / (num_x * num_y))


@dataclass(frozen=True)
class TwoPlayerGame:
    """A finite two-player non-local game.

    Attributes:
        name: label used in reports.
        num_inputs_a / num_inputs_b: input alphabet sizes.
        num_outputs_a / num_outputs_b: output alphabet sizes.
        distribution: joint input distribution, shape ``(nx, ny)``.
        predicate: win condition ``V(x, y, a, b) -> bool``.
    """

    name: str
    num_inputs_a: int
    num_inputs_b: int
    num_outputs_a: int
    num_outputs_b: int
    distribution: np.ndarray
    predicate: Callable[[int, int, int, int], bool] = field(compare=False)

    def __post_init__(self) -> None:
        dist = np.asarray(self.distribution, dtype=float)
        if dist.shape != (self.num_inputs_a, self.num_inputs_b):
            raise GameError(
                f"distribution shape {dist.shape} != "
                f"({self.num_inputs_a}, {self.num_inputs_b})"
            )
        if (dist < -1e-12).any() or abs(dist.sum() - 1.0) > 1e-9:
            raise GameError("distribution entries must be a probability dist")
        if min(self.num_outputs_a, self.num_outputs_b) < 1:
            raise GameError("output alphabets must be non-empty")
        object.__setattr__(self, "distribution", dist.clip(min=0.0))

    # -- values -------------------------------------------------------------

    def win_probability_of_behavior(self, behavior: np.ndarray) -> float:
        """Win probability of a conditional behavior ``p(a, b | x, y)``.

        ``behavior`` has shape ``(nx, ny, na, nb)``.
        """
        expected = (
            self.num_inputs_a,
            self.num_inputs_b,
            self.num_outputs_a,
            self.num_outputs_b,
        )
        behavior = np.asarray(behavior, dtype=float)
        if behavior.shape != expected:
            raise GameError(
                f"behavior shape {behavior.shape} != {expected}"
            )
        total = 0.0
        for x in range(self.num_inputs_a):
            for y in range(self.num_inputs_b):
                weight = self.distribution[x, y]
                if weight == 0.0:
                    continue
                for a in range(self.num_outputs_a):
                    for b in range(self.num_outputs_b):
                        if self.predicate(x, y, a, b):
                            total += weight * behavior[x, y, a, b]
        return float(total)

    def deterministic_value(
        self, assignment_a: Sequence[int], assignment_b: Sequence[int]
    ) -> float:
        """Win probability of a deterministic strategy pair."""
        if len(assignment_a) != self.num_inputs_a:
            raise GameError("assignment_a length mismatch")
        if len(assignment_b) != self.num_inputs_b:
            raise GameError("assignment_b length mismatch")
        total = 0.0
        for x in range(self.num_inputs_a):
            for y in range(self.num_inputs_b):
                weight = self.distribution[x, y]
                if weight and self.predicate(
                    x, y, assignment_a[x], assignment_b[y]
                ):
                    total += weight
        return float(total)

    def classical_value(self) -> float:
        """Exact classical value by brute force over deterministic strategies.

        Shared randomness cannot beat the best deterministic strategy
        (paper §3: "even if classical machines pre-agree on a strategy and
        share randomness"), so this is the classical optimum. Exponential
        in the input alphabet sizes; fine for the small games in the paper.
        """
        best = 0.0
        for assignment_a in itertools.product(
            range(self.num_outputs_a), repeat=self.num_inputs_a
        ):
            # Given Alice's assignment, Bob's best response decomposes
            # per input y.
            value = 0.0
            for y in range(self.num_inputs_b):
                best_y = 0.0
                for b in range(self.num_outputs_b):
                    score = sum(
                        self.distribution[x, y]
                        for x in range(self.num_inputs_a)
                        if self.predicate(x, y, assignment_a[x], b)
                    )
                    best_y = max(best_y, score)
                value += best_y
            best = max(best, value)
        return float(best)

    def best_classical_strategy(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return an optimal deterministic ``(alice, bob)`` assignment pair."""
        best = -1.0
        best_pair: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        for assignment_a in itertools.product(
            range(self.num_outputs_a), repeat=self.num_inputs_a
        ):
            assignment_b = []
            value = 0.0
            for y in range(self.num_inputs_b):
                scored = []
                for b in range(self.num_outputs_b):
                    score = sum(
                        self.distribution[x, y]
                        for x in range(self.num_inputs_a)
                        if self.predicate(x, y, assignment_a[x], b)
                    )
                    scored.append((score, b))
                score, b = max(scored)
                assignment_b.append(b)
                value += score
            if value > best:
                best = value
                best_pair = (tuple(assignment_a), tuple(assignment_b))
        assert best_pair is not None  # alphabets are non-empty
        return best_pair

    def __repr__(self) -> str:
        return (
            f"TwoPlayerGame({self.name!r}, "
            f"inputs=({self.num_inputs_a},{self.num_inputs_b}), "
            f"outputs=({self.num_outputs_a},{self.num_outputs_b}))"
        )
