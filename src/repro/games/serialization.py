"""JSON (de)serialization for games and affinity graphs.

Lets designers version-control the affinity specs and games their
balancers play. ``TwoPlayerGame`` predicates are serialized as explicit
win tables, so any finite game round-trips exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import networkx as nx
import numpy as np

from repro.errors import GameError
from repro.games.base import TwoPlayerGame
from repro.games.graph_games import AffinityGraph
from repro.games.xor import XORGame

__all__ = [
    "xor_game_to_dict",
    "xor_game_from_dict",
    "game_to_dict",
    "game_from_dict",
    "affinity_to_dict",
    "affinity_from_dict",
    "save_json",
    "load_json",
]

_KIND_KEY = "kind"


def xor_game_to_dict(game: XORGame) -> dict[str, Any]:
    """Serialize an XOR game."""
    return {
        _KIND_KEY: "xor_game",
        "name": game.name,
        "distribution": game.distribution.tolist(),
        "targets": game.targets.tolist(),
    }


def xor_game_from_dict(data: dict[str, Any]) -> XORGame:
    """Inverse of :func:`xor_game_to_dict`."""
    _require_kind(data, "xor_game")
    return XORGame(
        name=str(data["name"]),
        distribution=np.asarray(data["distribution"], dtype=float),
        targets=np.asarray(data["targets"], dtype=int),
    )


def game_to_dict(game: TwoPlayerGame) -> dict[str, Any]:
    """Serialize a finite two-player game with an explicit win table."""
    table = [
        [
            [
                [
                    bool(game.predicate(x, y, a, b))
                    for b in range(game.num_outputs_b)
                ]
                for a in range(game.num_outputs_a)
            ]
            for y in range(game.num_inputs_b)
        ]
        for x in range(game.num_inputs_a)
    ]
    return {
        _KIND_KEY: "two_player_game",
        "name": game.name,
        "distribution": game.distribution.tolist(),
        "num_outputs_a": game.num_outputs_a,
        "num_outputs_b": game.num_outputs_b,
        "win_table": table,
    }


def game_from_dict(data: dict[str, Any]) -> TwoPlayerGame:
    """Inverse of :func:`game_to_dict`."""
    _require_kind(data, "two_player_game")
    table = np.asarray(data["win_table"], dtype=bool)
    if table.ndim != 4:
        raise GameError(f"win table must be 4-D, got shape {table.shape}")
    dist = np.asarray(data["distribution"], dtype=float)
    return TwoPlayerGame(
        name=str(data["name"]),
        num_inputs_a=table.shape[0],
        num_inputs_b=table.shape[1],
        num_outputs_a=int(data["num_outputs_a"]),
        num_outputs_b=int(data["num_outputs_b"]),
        distribution=dist,
        predicate=lambda x, y, a, b: bool(table[x, y, a, b]),
    )


def affinity_to_dict(affinity: AffinityGraph) -> dict[str, Any]:
    """Serialize an affinity graph as an edge list."""
    return {
        _KIND_KEY: "affinity_graph",
        "num_types": affinity.num_types,
        "edges": [
            [int(u), int(v), bool(d["exclusive"])]
            for u, v, d in affinity.graph.edges(data=True)
        ],
    }


def affinity_from_dict(data: dict[str, Any]) -> AffinityGraph:
    """Inverse of :func:`affinity_to_dict`."""
    _require_kind(data, "affinity_graph")
    graph = nx.Graph()
    graph.add_nodes_from(range(int(data["num_types"])))
    for u, v, exclusive in data["edges"]:
        graph.add_edge(int(u), int(v), exclusive=bool(exclusive))
    return AffinityGraph(graph)


def save_json(obj: XORGame | TwoPlayerGame | AffinityGraph,
              path: str | Path) -> None:
    """Serialize any supported object to a JSON file."""
    if isinstance(obj, XORGame):
        data = xor_game_to_dict(obj)
    elif isinstance(obj, TwoPlayerGame):
        data = game_to_dict(obj)
    elif isinstance(obj, AffinityGraph):
        data = affinity_to_dict(obj)
    else:
        raise GameError(f"cannot serialize {type(obj).__name__}")
    Path(path).write_text(json.dumps(data, indent=2), encoding="utf-8")


def load_json(path: str | Path) -> XORGame | TwoPlayerGame | AffinityGraph:
    """Load any supported object from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    kind = data.get(_KIND_KEY)
    loaders = {
        "xor_game": xor_game_from_dict,
        "two_player_game": game_from_dict,
        "affinity_graph": affinity_from_dict,
    }
    if kind not in loaders:
        raise GameError(f"unknown serialized kind {kind!r}")
    return loaders[kind](data)


def _require_kind(data: dict[str, Any], kind: str) -> None:
    if data.get(_KIND_KEY) != kind:
        raise GameError(
            f"expected serialized kind {kind!r}, got {data.get(_KIND_KEY)!r}"
        )
