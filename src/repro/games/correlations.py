"""Behaviors and the no-signaling polytope.

A *behavior* is the conditional distribution ``p(a, b | x, y)`` a
strategy induces. Three nested sets organize the whole paper:

- classical (shared randomness) ⊂ quantum (entanglement) ⊂ no-signaling.

This module provides behavior-level checks (validity, no-signaling,
marginals) and the Popescu-Rohrlich box — the extremal no-signaling
behavior that wins CHSH with certainty. Physics stops at Tsirelson's
bound, not at no-signaling: the PR box quantifies how much coordination
causality alone would permit, and how much of it quantum mechanics
actually delivers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.games.base import TwoPlayerGame

__all__ = [
    "is_valid_behavior",
    "is_no_signaling",
    "alice_marginal",
    "bob_marginal",
    "pr_box",
    "behavior_win_probability",
    "classical_mixture_behavior",
]


def is_valid_behavior(behavior: np.ndarray, *, atol: float = 1e-9) -> bool:
    """Check non-negativity and per-input normalization."""
    behavior = np.asarray(behavior, dtype=float)
    if behavior.ndim != 4:
        return False
    if (behavior < -atol).any():
        return False
    sums = behavior.sum(axis=(2, 3))
    return bool(np.allclose(sums, 1.0, atol=atol))


def alice_marginal(behavior: np.ndarray) -> np.ndarray:
    """``p(a | x, y)`` — shape ``(nx, ny, na)``."""
    return np.asarray(behavior, dtype=float).sum(axis=3)


def bob_marginal(behavior: np.ndarray) -> np.ndarray:
    """``p(b | x, y)`` — shape ``(nx, ny, nb)``."""
    return np.asarray(behavior, dtype=float).sum(axis=2)


def is_no_signaling(behavior: np.ndarray, *, atol: float = 1e-9) -> bool:
    """True when neither party's marginal depends on the other's input.

    This is the physical constraint the paper's §4.2 argument leans on:
    whatever basis a far-away party chooses, the local statistics cannot
    change — otherwise the parties could communicate faster than light.
    """
    if not is_valid_behavior(behavior, atol=atol):
        return False
    a_marg = alice_marginal(behavior)
    b_marg = bob_marginal(behavior)
    # Alice's marginal must be constant across y; Bob's across x.
    a_ok = np.allclose(a_marg, a_marg[:, :1, :], atol=atol)
    b_ok = np.allclose(b_marg, b_marg[:1, :, :], atol=atol)
    return bool(a_ok and b_ok)


def pr_box() -> np.ndarray:
    """The Popescu-Rohrlich box: ``a XOR b = x AND y`` with certainty.

    No-signaling (marginals stay uniform) but super-quantum: it wins
    CHSH with probability 1, beyond Tsirelson's cos^2(pi/8). No physical
    system realizes it — it marks the causality ceiling.
    """
    behavior = np.zeros((2, 2, 2, 2))
    for x in range(2):
        for y in range(2):
            for a in range(2):
                for b in range(2):
                    if (a ^ b) == (x & y):
                        behavior[x, y, a, b] = 0.5
    return behavior


def behavior_win_probability(
    game: TwoPlayerGame, behavior: np.ndarray
) -> float:
    """Win probability of an arbitrary behavior (validity enforced)."""
    if not is_valid_behavior(behavior):
        raise GameError("behavior is not a valid conditional distribution")
    return game.win_probability_of_behavior(behavior)


def classical_mixture_behavior(
    assignments: list[tuple[tuple[int, ...], tuple[int, ...]]],
    weights: list[float],
    num_outputs: tuple[int, int] = (2, 2),
) -> np.ndarray:
    """Behavior of a shared-randomness mixture of deterministic pairs.

    Every point of the classical polytope has this form; useful for
    constructing explicit classical witnesses in tests.
    """
    if len(assignments) != len(weights) or not assignments:
        raise GameError("assignments and weights must align and be non-empty")
    if any(w < 0 for w in weights) or abs(sum(weights) - 1.0) > 1e-9:
        raise GameError("weights must form a distribution")
    nx = len(assignments[0][0])
    ny = len(assignments[0][1])
    na, nb = num_outputs
    behavior = np.zeros((nx, ny, na, nb))
    for (a_table, b_table), weight in zip(assignments, weights):
        if len(a_table) != nx or len(b_table) != ny:
            raise GameError("assignment tables have inconsistent lengths")
        for x in range(nx):
            for y in range(ny):
                behavior[x, y, a_table[x], b_table[y]] += weight
    return behavior
