"""Network substrate: requests, links, servers, workloads, metrics."""

from repro.net.latency import (
    LatencyModel,
    deadline_limited_availability,
    effective_win_probability,
)
from repro.net.link import Link
from repro.net.metrics import DelayStats, FleetMetrics
from repro.net.packet import Packet, Request, TaskType
from repro.net.server import Server
from repro.net.trace import Trace, record_bernoulli_trace
from repro.net.workload import BernoulliTaskMix, PoissonArrivals, SubtypedTaskMix

__all__ = [
    "LatencyModel",
    "deadline_limited_availability",
    "effective_win_probability",
    "Link",
    "DelayStats",
    "FleetMetrics",
    "Packet",
    "Request",
    "TaskType",
    "Server",
    "Trace",
    "record_bernoulli_trace",
    "BernoulliTaskMix",
    "PoissonArrivals",
    "SubtypedTaskMix",
]
