"""Point-to-point links with propagation delay.

Models both the classical datacenter network and the quantum fiber of
Fig 1. The paper's timing argument (Fig 2) is that pre-shared qubits let
decisions happen *without* paying this delay; the DES caveat studies use
links to quantify what communication-based coordination would cost.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import NetworkError
from repro.sim.core import Environment, Event, Timeout

__all__ = ["Link"]


class Link:
    """A unidirectional link with propagation delay and optional bandwidth.

    ``transmit`` returns an event that fires when the payload arrives at
    the far end; an optional ``on_deliver`` callback receives it there.
    """

    def __init__(
        self,
        env: Environment,
        propagation_delay: float,
        *,
        bandwidth: float | None = None,
        name: str = "",
    ) -> None:
        if propagation_delay < 0:
            raise NetworkError(f"negative propagation delay {propagation_delay}")
        if bandwidth is not None and bandwidth <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.propagation_delay = propagation_delay
        self.bandwidth = bandwidth
        self.name = name
        self._busy_until = 0.0
        self.delivered = 0

    def transmit(
        self,
        payload: Any,
        size: float = 1.0,
        on_deliver: Callable[[Any], None] | None = None,
    ) -> Event:
        """Send ``payload``; returns the arrival event.

        With a bandwidth cap, transmissions serialize: the next one
        starts after the previous finishes pushing its bits.
        """
        if size <= 0:
            raise NetworkError(f"payload size must be positive, got {size}")
        now = self.env.now
        if self.bandwidth is None:
            transmit_time = 0.0
            start = now
        else:
            transmit_time = size / self.bandwidth
            start = max(now, self._busy_until)
            self._busy_until = start + transmit_time
        total_delay = (start - now) + transmit_time + self.propagation_delay
        arrival = Timeout(self.env, total_delay, value=payload)
        if on_deliver is not None:
            arrival.callbacks.append(lambda event: on_deliver(event.value))
        arrival.callbacks.append(self._count)
        return arrival

    def _count(self, _event: Event) -> None:
        self.delivered += 1

    def rtt(self) -> float:
        """Round-trip propagation time (ignores bandwidth)."""
        return 2.0 * self.propagation_delay

    def __repr__(self) -> str:
        return (
            f"Link({self.name or 'unnamed'!r}, "
            f"delay={self.propagation_delay}, bandwidth={self.bandwidth})"
        )
