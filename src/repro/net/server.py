"""Continuous-time server model with the paper's service semantics.

The paper's Fig 4 uses a synchronous timestep model (implemented in
:mod:`repro.lb.simulation`); this DES server is the continuous-time
analogue used by the caveat studies in §4.1 (task execution time vs
round-trip time):

- type-C requests share the machine: up to two run concurrently, each
  taking ``service_time``;
- type-E requests demand exclusivity: one at a time, with nothing else
  running.

Type-C requests are served before queued type-E requests, mirroring the
paper's "two type-C requests first, followed by type-E" rule.
"""

from __future__ import annotations

from collections import deque

from repro.errors import NetworkError
from repro.net.packet import Request, TaskType
from repro.sim.core import Environment, Event, Timeout
from repro.sim.monitor import TimeWeightedValue

__all__ = ["Server"]


class Server:
    """A worker that serves colocatable and exclusive requests.

    Submit with :meth:`submit`; completion events let callers measure
    delays. Queue length (waiting requests) is tracked time-weighted for
    Fig 4-style averages.
    """

    def __init__(
        self,
        env: Environment,
        *,
        service_time: float = 1.0,
        colocation_slots: int = 2,
        name: str = "",
    ) -> None:
        if service_time <= 0:
            raise NetworkError(f"service_time must be positive: {service_time}")
        if colocation_slots < 1:
            raise NetworkError(
                f"colocation_slots must be >= 1: {colocation_slots}"
            )
        self.env = env
        self.name = name
        self.service_time = service_time
        self.colocation_slots = colocation_slots
        self._queue: deque[tuple[Request, Event]] = deque()
        self._running_c = 0
        self._running_e = 0
        self.queue_metric = TimeWeightedValue(env, initial=0.0)
        self.completed = 0

    @property
    def queue_length(self) -> int:
        """Requests waiting (not yet in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True when anything is running."""
        return self._running_c > 0 or self._running_e > 0

    def submit(self, request: Request) -> Event:
        """Enqueue a request; the returned event fires at completion."""
        done = Event(self.env)
        self._queue.append((request, done))
        self.queue_metric.set(len(self._queue))
        self._dispatch()
        return done

    def _dispatch(self) -> None:
        """Start whatever the service discipline allows right now."""
        started = True
        while started and self._queue:
            started = False
            if self._running_e > 0:
                return  # an exclusive task owns the machine
            # Serve type-C first, up to the slot limit.
            index = self._find_next(TaskType.COLOCATE)
            if index is not None and self._running_c < self.colocation_slots:
                request, done = self._pop(index)
                self._start(request, done, is_exclusive=False)
                started = True
                continue
            # Otherwise an exclusive task may start only on an idle machine.
            index = self._find_next(TaskType.EXCLUSIVE)
            if index is not None and self._running_c == 0:
                request, done = self._pop(index)
                self._start(request, done, is_exclusive=True)
                started = True

    def _find_next(self, task_type: TaskType) -> int | None:
        for i, (request, _) in enumerate(self._queue):
            if request.task_type is task_type:
                return i
        return None

    def _pop(self, index: int) -> tuple[Request, Event]:
        self._queue.rotate(-index)
        item = self._queue.popleft()
        self._queue.rotate(index)
        self.queue_metric.set(len(self._queue))
        return item

    def _start(self, request: Request, done: Event, *, is_exclusive: bool) -> None:
        request.start_service_time = self.env.now
        if is_exclusive:
            self._running_e += 1
        else:
            self._running_c += 1
        finish = Timeout(self.env, self.service_time)
        finish.callbacks.append(
            lambda _e: self._finish(request, done, is_exclusive)
        )

    def _finish(self, request: Request, done: Event, is_exclusive: bool) -> None:
        if is_exclusive:
            self._running_e -= 1
        else:
            self._running_c -= 1
        request.completion_time = self.env.now
        self.completed += 1
        done.succeed(request)
        self._dispatch()

    def __repr__(self) -> str:
        return (
            f"Server({self.name or 'unnamed'!r}, queue={self.queue_length}, "
            f"running_c={self._running_c}, running_e={self._running_e})"
        )
