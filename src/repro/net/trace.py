"""Trace-driven workloads: record, save, replay.

Production studies replay captured request streams rather than
synthetic draws (and the paper's §5 notes testbeds know the full
request stream in advance). A :class:`Trace` holds per-round task
vectors; it can be recorded from any generator, round-tripped through
CSV, and fed to the timestep simulation in place of the Bernoulli mix.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.net.packet import TaskType
from repro.net.workload import BernoulliTaskMix

__all__ = ["Trace", "record_bernoulli_trace"]


@dataclass
class Trace:
    """A replayable sequence of per-round task vectors.

    Attributes:
        rounds: list of task-type lists, one inner list per timestep;
            every round must cover the same number of balancers.
    """

    rounds: list[list[TaskType]] = field(default_factory=list)

    def __post_init__(self) -> None:
        widths = {len(r) for r in self.rounds}
        if len(widths) > 1:
            raise ConfigurationError(
                f"rounds have inconsistent balancer counts: {sorted(widths)}"
            )

    @property
    def num_rounds(self) -> int:
        """Recorded timesteps."""
        return len(self.rounds)

    @property
    def num_balancers(self) -> int:
        """Balancers per round (0 for an empty trace)."""
        return len(self.rounds[0]) if self.rounds else 0

    def append(self, tasks: list[TaskType]) -> None:
        """Record one round."""
        if self.rounds and len(tasks) != self.num_balancers:
            raise ConfigurationError(
                f"round has {len(tasks)} tasks, trace uses "
                f"{self.num_balancers}"
            )
        self.rounds.append(list(tasks))

    def replayer(self, *, cycle: bool = False) -> "TraceReplayer":
        """A draw-compatible workload that replays this trace."""
        return TraceReplayer(self, cycle=cycle)

    def colocate_fraction(self) -> float:
        """Overall fraction of type-C tasks."""
        total = sum(len(r) for r in self.rounds)
        if total == 0:
            raise ConfigurationError("empty trace")
        hits = sum(
            1 for r in self.rounds for t in r if t is TaskType.COLOCATE
        )
        return hits / total

    # -- serialization ------------------------------------------------------

    def to_csv(self) -> str:
        """One line per round; tasks as single letters (C/E)."""
        out = io.StringIO()
        out.write("round,tasks\n")
        for index, tasks in enumerate(self.rounds):
            letters = "".join(t.value for t in tasks)
            out.write(f"{index},{letters}\n")
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_csv`.

        The ``round`` column is validated, not discarded: indices must
        be exactly ``0..n-1`` in order, so a shuffled, duplicated, or
        gapped trace (e.g. a truncated copy or a bad merge of two
        captures) fails loudly instead of silently replaying rounds
        against the wrong timesteps.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines or lines[0] != "round,tasks":
            raise ConfigurationError("missing 'round,tasks' CSV header")
        rounds = []
        for position, line in enumerate(lines[1:]):
            try:
                index_text, letters = line.split(",", 1)
            except ValueError as exc:
                raise ConfigurationError(f"malformed trace line {line!r}") from exc
            try:
                index = int(index_text)
            except ValueError as exc:
                raise ConfigurationError(
                    f"non-integer round index {index_text!r} in line {line!r}"
                ) from exc
            if index != position:
                raise ConfigurationError(
                    f"round indices must be exactly 0..n-1 in order: "
                    f"expected {position}, got {index} (shuffled, "
                    f"duplicated, or gapped trace)"
                )
            try:
                rounds.append([TaskType(ch) for ch in letters])
            except ValueError as exc:
                raise ConfigurationError(
                    f"unknown task letter in {letters!r}"
                ) from exc
        return cls(rounds=rounds)

    def save(self, path: str | Path) -> None:
        """Write the CSV form to a file."""
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace from a CSV file."""
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))


class TraceReplayer:
    """Workload adapter replaying a :class:`Trace` round by round.

    Implements the same ``draw(rng) -> list[TaskType]`` interface as
    :class:`~repro.net.workload.BernoulliTaskMix` (the rng is unused —
    the trace is deterministic).
    """

    def __init__(self, trace: Trace, *, cycle: bool = False) -> None:
        if trace.num_rounds == 0:
            raise ConfigurationError("cannot replay an empty trace")
        self._trace = trace
        self._cycle = cycle
        self._cursor = 0
        self.num_balancers = trace.num_balancers

    def draw(self, rng: np.random.Generator) -> list[TaskType]:
        """Next round's tasks; cycles or raises at exhaustion."""
        if self._cursor >= self._trace.num_rounds:
            if not self._cycle:
                raise ConfigurationError(
                    f"trace exhausted after {self._trace.num_rounds} rounds"
                )
            self._cursor = 0
        tasks = self._trace.rounds[self._cursor]
        self._cursor += 1
        return list(tasks)

    def draw_batch(self, rng: np.random.Generator, steps: int) -> np.ndarray:
        """The next ``steps`` rounds as a ``(steps, N)`` bit matrix.

        Bit encoding follows :attr:`~repro.net.packet.TaskType.bit`
        (1 = type-C). Advances the replay cursor by ``steps`` so batched
        and per-step replays interleave consistently; cycling wraps
        around exactly like repeated :meth:`draw` calls, and a
        non-cycling replayer raises when the trace cannot cover the
        batch.
        """
        if steps < 1:
            raise ConfigurationError("need at least one timestep")
        num_rounds = self._trace.num_rounds
        bits = np.array(
            [[t.bit for t in r] for r in self._trace.rounds], dtype=np.uint8
        )
        if self._cycle:
            index = (self._cursor + np.arange(steps)) % num_rounds
            self._cursor = int((self._cursor + steps) % num_rounds)
            return bits[index]
        if self._cursor + steps > num_rounds:
            raise ConfigurationError(
                f"trace exhausted after {num_rounds} rounds"
            )
        start = self._cursor
        self._cursor += steps
        return bits[start : start + steps]


def record_bernoulli_trace(
    num_balancers: int,
    num_rounds: int,
    rng: np.random.Generator,
    *,
    p_colocate: float = 0.5,
) -> Trace:
    """Record a Bernoulli workload into a replayable trace."""
    if num_rounds < 1:
        raise ConfigurationError("need at least one round")
    mix = BernoulliTaskMix(num_balancers, p_colocate)
    trace = Trace()
    for _ in range(num_rounds):
        trace.append(mix.draw(rng))
    return trace
