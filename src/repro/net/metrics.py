"""Fleet-level metrics for load-balancing experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetworkError
from repro.net.server import Server

__all__ = ["FleetMetrics", "DelayStats"]


@dataclass(frozen=True)
class DelayStats:
    """Summary statistics of a collection of delays.

    An empty collection is a valid outcome — a short-horizon or fully
    saturated run may complete nothing — and is represented by the
    ``count=0`` sentinel whose statistics are all NaN, so overloaded
    sweep cells report instead of crashing.
    """

    mean: float
    p50: float
    p95: float
    p99: float
    count: int

    @classmethod
    def empty(cls) -> "DelayStats":
        """The ``count=0`` sentinel: no request completed."""
        nan = float("nan")
        return cls(mean=nan, p50=nan, p95=nan, p99=nan, count=0)

    @property
    def is_empty(self) -> bool:
        """True when no delay sample was collected."""
        return self.count == 0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "DelayStats":
        """Compute stats; empty input yields the :meth:`empty` sentinel."""
        if not samples:
            return cls.empty()
        arr = np.asarray(samples, dtype=float)
        return cls(
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            count=len(samples),
        )


class FleetMetrics:
    """Aggregates queue metrics across a fleet of DES servers."""

    def __init__(self, servers: list[Server]) -> None:
        if not servers:
            raise NetworkError("fleet must contain at least one server")
        self._servers = servers

    def mean_queue_length(self) -> float:
        """Time-averaged queue length, averaged over servers (Fig 4 y-axis)."""
        return float(
            np.mean([s.queue_metric.time_average() for s in self._servers])
        )

    def total_completed(self) -> int:
        """Requests completed across the fleet."""
        return sum(s.completed for s in self._servers)

    def instantaneous_queue_lengths(self) -> np.ndarray:
        """Current queue lengths (for imbalance snapshots)."""
        return np.array([s.queue_length for s in self._servers])

    def imbalance(self) -> float:
        """Max-minus-mean of current queue lengths."""
        lengths = self.instantaneous_queue_lengths()
        return float(lengths.max() - lengths.mean())
