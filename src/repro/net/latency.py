"""Light-cone latency model: when does coordination fit a deadline?

The paper's pitch is "correlation without round-trips"; the related
latency-constrained-nonlocality literature (PAPERS.md: *Operational
criteria for quantum advantage in latency-constrained nonlocal games*,
*Quantum Nonlocality under Latency Constraints*) makes the operating
question precise: a decision must be made within a *deadline* of the
request's arrival, and every classical coordination message is bounded
by the light cone of the fiber connecting the two sites.

:class:`LatencyModel` captures one operating point — site separation
plus decision deadline — and answers the budget questions:

- ``can_route_remotely``: can a dispatched request physically reach the
  far side's servers before the deadline? Below this one-way bound no
  strategy, quantum or classical, can act across sites: the cell is
  forced classical-local.
- ``can_query_and_respond``: does a query-and-respond exchange (the
  §4.1 communicating balancer) fit inside the deadline? This is the
  full-RTT bound that pre-shared entanglement never pays.

:func:`effective_win_probability` turns the model into the deliverable
colocation-game win rate of a hardware configuration: pair availability
from :mod:`repro.hardware.scheduler` (generation rate and the buffering
window, capped by the deadline) blended with the Werner-state CHSH win
probability of the delivered fidelity — the quantity the regime map
(:mod:`repro.lb.regime`) compares against the classical baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "LatencyModel",
    "deadline_limited_availability",
    "effective_win_probability",
]


@dataclass(frozen=True)
class LatencyModel:
    """One latency-constrained operating point of a two-site deployment.

    Attributes:
        distance_m: fiber distance between the two balancer sites in
            meters; signals propagate at ``FIBER_LIGHT_SPEED``
            (:mod:`repro.hardware.distribution`), exactly the speed a
            :class:`~repro.hardware.distribution.FiberChannel` of the
            same length reports via ``transit_time``.
        deadline: decision deadline in seconds, measured from request
            arrival to the moment the routed request must be able to
            start at its server. ``math.inf`` is allowed (no deadline).
        processing_delay: fixed per-exchange handling overhead in
            seconds (serialization, scheduling), added to every
            classical coordination budget.
    """

    distance_m: float
    deadline: float
    processing_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.distance_m < 0:
            raise ConfigurationError(
                f"negative site distance {self.distance_m}"
            )
        if self.deadline < 0 or math.isnan(self.deadline):
            raise ConfigurationError(
                f"deadline must be non-negative, got {self.deadline}"
            )
        if self.processing_delay < 0:
            raise ConfigurationError(
                f"negative processing delay {self.processing_delay}"
            )

    @classmethod
    def from_fiber(
        cls, fiber, deadline: float, *, processing_delay: float = 0.0
    ) -> "LatencyModel":
        """Build the model from a :class:`~repro.hardware.distribution
        .FiberChannel` spanning the two sites."""
        return cls(
            distance_m=fiber.length_m,
            deadline=deadline,
            processing_delay=processing_delay,
        )

    @property
    def one_way_delay(self) -> float:
        """One-way light-cone delay between the sites, in seconds."""
        from repro.hardware.distribution import FIBER_LIGHT_SPEED

        return self.distance_m / FIBER_LIGHT_SPEED

    @property
    def rtt(self) -> float:
        """Round-trip propagation time between the sites."""
        return 2.0 * self.one_way_delay

    def can_route_remotely(self) -> bool:
        """Can a dispatched request reach the far site by the deadline?

        The light-cone floor: below it even a perfectly correlated
        decision cannot be *acted on* across sites, so no cross-site
        strategy — quantum or classical — exists.
        """
        return self.one_way_delay <= self.deadline

    def can_query_and_respond(self) -> bool:
        """Does a query-and-respond exchange fit inside the deadline?

        The budget the §4.1 communicating balancer needs: one message
        out, one back, plus processing. Pre-shared entanglement never
        pays this — its decisions are local measurements.
        """
        return self.rtt + self.processing_delay <= self.deadline

    def coordination_slack(self) -> float:
        """Deadline headroom left after a query-and-respond exchange
        (negative when coordination does not fit)."""
        return self.deadline - self.rtt - self.processing_delay

    def buffering_window(self, storage_limit: float) -> float:
        """The usable pair-buffering window under this deadline.

        A decision may consume any pair that is still within the QNIC
        storage window, and may stall at most ``deadline`` waiting for
        supply, so the window that matters for availability is the
        smaller of the two. ``deadline -> inf`` recovers the plain
        storage window — the undegraded supply model.
        """
        if storage_limit <= 0:
            raise ConfigurationError(
                f"storage window must be positive, got {storage_limit}"
            )
        return min(storage_limit, self.deadline)


def deadline_limited_availability(
    model: LatencyModel,
    *,
    pair_rate: float,
    request_rate: float,
    storage_limit: float,
) -> float:
    """Pair availability under the deadline-capped buffering window.

    Composes :func:`repro.hardware.scheduler.analytic_pair_availability`
    (generation rate ``pair_rate``, per-QNIC consumption
    ``request_rate``) with the window from
    :meth:`LatencyModel.buffering_window`. A zero window — a deadline of
    exactly zero — yields zero availability: no pair can be waited for.
    """
    from repro.hardware.scheduler import analytic_pair_availability

    window = model.buffering_window(storage_limit)
    if window <= 0:
        return 0.0
    return analytic_pair_availability(pair_rate, request_rate, window)


def effective_win_probability(
    model: LatencyModel,
    *,
    fidelity: float,
    pair_rate: float,
    request_rate: float,
    storage_limit: float,
    classical_win: float | None = None,
) -> float:
    """Deliverable colocation-game win rate at one operating point.

    Composition, in light-cone order:

    1. Below the one-way bound (``not model.can_route_remotely()``) no
       cross-site routing exists, so the correlation cannot be acted on
       and the deliverable rate collapses to ``classical_win`` (the
       best shared-randomness value, ``CHSH_CLASSICAL_VALUE`` = 3/4 by
       default).
    2. Otherwise decisions backed by a live pair win with the exact
       Werner-state CHSH probability at ``fidelity`` (the PR 3
       degradation plane); the rest fall back to the classical paired
       strategy. Availability comes from
       :func:`deadline_limited_availability`.

    ``deadline -> inf`` with ample supply and ``fidelity=1`` recovers
    the undegraded quantum value ``cos^2(pi/8)`` — the Fig 4 knee's
    operating assumption; a fidelity at the Werner threshold
    (:func:`repro.hardware.budget.required_fidelity_for_advantage`)
    makes this exactly ``classical_win`` for every deadline.
    """
    from repro.games.chsh import (
        CHSH_CLASSICAL_VALUE,
        chsh_win_probability_for_state,
    )
    from repro.hardware import scheduler
    from repro.quantum.entangle import werner_state

    if classical_win is None:
        classical_win = CHSH_CLASSICAL_VALUE
    if not model.can_route_remotely():
        return float(classical_win)
    quantum_win = chsh_win_probability_for_state(werner_state(fidelity))
    availability = deadline_limited_availability(
        model,
        pair_rate=pair_rate,
        request_rate=request_rate,
        storage_limit=storage_limit,
    )
    return scheduler.effective_win_probability(
        availability, quantum_win, classical_win
    )
