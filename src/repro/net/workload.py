"""Workload generators for the load-balancing experiments.

Fig 4 draws, per timestep and per balancer, a type-C or type-E task with
equal probability; :class:`BernoulliTaskMix` is that generator. The DES
caveat studies use :class:`PoissonArrivals`. Multi-subtype workloads
exercise the §4.1 caveat that dedicated-pool classical strategies break
when "multiple subtypes of type-C tasks ... do not like being mixed".
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.packet import Request, TaskType

__all__ = [
    "BernoulliTaskMix",
    "MultiClassTaskMix",
    "PoissonArrivals",
    "SubtypedTaskMix",
]


class BernoulliTaskMix:
    """Per-balancer, per-timestep task draw: type-C with probability ``p_c``."""

    def __init__(self, num_balancers: int, p_colocate: float = 0.5) -> None:
        if num_balancers < 1:
            raise ConfigurationError("need at least one balancer")
        if not 0.0 <= p_colocate <= 1.0:
            raise ConfigurationError(f"p_colocate {p_colocate} outside [0, 1]")
        self.num_balancers = num_balancers
        self.p_colocate = p_colocate

    def draw(self, rng: np.random.Generator) -> list[TaskType]:
        """One timestep's tasks, one per balancer."""
        bits = rng.random(self.num_balancers) < self.p_colocate
        return [TaskType.COLOCATE if b else TaskType.EXCLUSIVE for b in bits]

    def draw_batch(self, rng: np.random.Generator, steps: int) -> np.ndarray:
        """``steps`` timesteps of tasks as a ``(steps, N)`` bit matrix.

        Entries use the :attr:`~repro.net.packet.TaskType.bit` encoding
        (1 = type-C). The batch consumes ``rng`` exactly like ``steps``
        successive :meth:`draw` calls (uniform doubles fill row-major),
        so batched and per-step workloads see identical task streams.
        """
        if steps < 1:
            raise ConfigurationError("need at least one timestep")
        bits = rng.random((steps, self.num_balancers)) < self.p_colocate
        return bits.astype(np.uint8)

    def draw_requests(
        self, rng: np.random.Generator, time: float = 0.0
    ) -> list[Request]:
        """Same, wrapped as :class:`Request` objects."""
        return [
            Request(task_type=t, arrival_time=time, source=i)
            for i, t in enumerate(self.draw(rng))
        ]


class MultiClassTaskMix:
    """Per-balancer, per-timestep draw over ``C`` integer task classes.

    Class 0 is type-E; classes ``1..C-1`` are mutually incompatible
    type-C subtypes (the §4.1 caveat). Tasks are plain integers — the
    inputs of a general nonlocal game — so the timestep engines route
    them straight into multi-input policies such as
    :class:`~repro.lb.policies.MultiClassPairedAssignment` (the
    :class:`TaskType` bit encoding is the ``C = 2`` special case).
    """

    def __init__(
        self,
        num_balancers: int,
        class_probabilities: Sequence[float] = (0.5, 0.25, 0.25),
    ) -> None:
        if num_balancers < 1:
            raise ConfigurationError("need at least one balancer")
        probs = np.asarray(class_probabilities, dtype=float)
        if probs.ndim != 1 or probs.size < 2:
            raise ConfigurationError("need at least two task classes")
        if (probs < 0).any() or abs(probs.sum() - 1.0) > 1e-9:
            raise ConfigurationError(
                "class probabilities must form a distribution"
            )
        self.num_balancers = num_balancers
        self.class_probabilities = tuple(float(p) for p in probs)
        self._cumulative = np.minimum(probs.cumsum(), 1.0)

    @property
    def num_classes(self) -> int:
        """Number of task classes."""
        return len(self.class_probabilities)

    def _classes_from_uniform(self, uniform: np.ndarray) -> np.ndarray:
        classes = np.searchsorted(self._cumulative, uniform, side="right")
        return np.minimum(classes, self.num_classes - 1).astype(np.uint8)

    def draw(self, rng: np.random.Generator) -> list[int]:
        """One timestep's task classes, one per balancer."""
        uniform = rng.random(self.num_balancers)
        return [int(c) for c in self._classes_from_uniform(uniform)]

    def draw_batch(self, rng: np.random.Generator, steps: int) -> np.ndarray:
        """``steps`` timesteps of classes as a ``(steps, N)`` int matrix.

        Consumes ``rng`` exactly like ``steps`` successive :meth:`draw`
        calls (uniform doubles fill row-major), so batched and per-step
        workloads see identical task streams.
        """
        if steps < 1:
            raise ConfigurationError("need at least one timestep")
        uniform = rng.random((steps, self.num_balancers))
        return self._classes_from_uniform(uniform)


class SubtypedTaskMix:
    """Task mix where type-C splits into incompatible subtypes.

    Colocation only helps within a subtype; mixing subtypes on a server
    is as bad as mixing C with E. Used by the hybrid-strategy ablation.
    """

    def __init__(
        self,
        num_balancers: int,
        num_subtypes: int,
        p_colocate: float = 0.5,
    ) -> None:
        if num_subtypes < 1:
            raise ConfigurationError("need at least one subtype")
        self._mix = BernoulliTaskMix(num_balancers, p_colocate)
        self.num_subtypes = num_subtypes

    @property
    def num_balancers(self) -> int:
        """Number of balancers drawn for."""
        return self._mix.num_balancers

    def draw_requests(
        self, rng: np.random.Generator, time: float = 0.0
    ) -> list[Request]:
        """Tasks with uniformly random subtypes on the type-C draws."""
        requests = self._mix.draw_requests(rng, time)
        for request in requests:
            if request.task_type is TaskType.COLOCATE:
                request.subtype = int(rng.integers(self.num_subtypes))
        return requests


class PoissonArrivals:
    """Exponential inter-arrival request stream for the DES model."""

    def __init__(self, rate: float, p_colocate: float = 0.5) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if not 0.0 <= p_colocate <= 1.0:
            raise ConfigurationError(f"p_colocate {p_colocate} outside [0, 1]")
        self.rate = rate
        self.p_colocate = p_colocate

    def arrivals_until(
        self, horizon: float, rng: np.random.Generator, source: int = 0
    ) -> Iterator[Request]:
        """Yield requests with arrival times up to ``horizon``."""
        time = 0.0
        while True:
            time += rng.exponential(1.0 / self.rate)
            if time > horizon:
                return
            task = (
                TaskType.COLOCATE
                if rng.random() < self.p_colocate
                else TaskType.EXCLUSIVE
            )
            yield Request(task_type=task, arrival_time=time, source=source)
