"""Request and packet types shared across the network substrate."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["TaskType", "Request", "Packet"]


class TaskType(enum.Enum):
    """The paper's two task classes (§4.1).

    COLOCATE ("type-C") tasks benefit from sharing a server — shared
    caches, in-memory objects, or parallel execution. EXCLUSIVE
    ("type-E") tasks want the server to themselves.
    """

    COLOCATE = "C"
    EXCLUSIVE = "E"

    @property
    def bit(self) -> int:
        """Game-input encoding: 1 for type-C, 0 for type-E (paper §4.1)."""
        return 1 if self is TaskType.COLOCATE else 0

    @classmethod
    def from_bit(cls, bit: int) -> "TaskType":
        """Inverse of :attr:`bit`."""
        return cls.COLOCATE if bit else cls.EXCLUSIVE


_request_ids = itertools.count()
_packet_ids = itertools.count()


@dataclass
class Request:
    """An application-level request handled by a load balancer.

    Attributes:
        task_type: colocate/exclusive class.
        arrival_time: when the request reached the balancer.
        source: identifier of the balancer that received it.
        subtype: optional sub-class for multi-subtype workloads (the
            §4.1 caveat about "multiple subtypes of type-C tasks").
        request_id: unique id assigned at creation.
    """

    task_type: TaskType
    arrival_time: float = 0.0
    source: int = 0
    subtype: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    start_service_time: float | None = None
    completion_time: float | None = None

    @property
    def queueing_delay(self) -> float | None:
        """Arrival-to-service-start delay, once known."""
        if self.start_service_time is None:
            return None
        return self.start_service_time - self.arrival_time

    @property
    def total_delay(self) -> float | None:
        """Arrival-to-completion delay, once known."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


@dataclass
class Packet:
    """A network packet for the ECMP substrate.

    Attributes:
        flow_id: flow identifier (ECMP hashes on this per-flow).
        size: abstract size units (transmission time scales with it).
        source / destination: endpoint identifiers.
    """

    flow_id: int
    size: float = 1.0
    source: int = 0
    destination: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    send_time: float = 0.0
    arrival_time: float | None = None
