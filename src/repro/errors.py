"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems raise the most specific
subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class QuantumError(ReproError):
    """Base class for errors from the quantum simulation substrate."""


class DimensionError(QuantumError):
    """A vector or operator has an incompatible or non-power-of-two shape."""


class NotNormalizedError(QuantumError):
    """A state vector or density matrix fails its normalization invariant."""

    def __init__(self, norm: float, tolerance: float) -> None:
        super().__init__(
            f"state norm {norm!r} deviates from 1 by more than {tolerance!r}"
        )
        self.norm = norm
        self.tolerance = tolerance


class NotUnitaryError(QuantumError):
    """A matrix used as a gate is not unitary within tolerance."""


class NotHermitianError(QuantumError):
    """A matrix used as an observable is not Hermitian within tolerance."""


class NotDensityMatrixError(QuantumError):
    """A matrix is not a valid density matrix (PSD, trace one)."""


class MeasurementError(QuantumError):
    """A measurement request is malformed (bad basis, reused qubit, ...)."""


class QubitConsumedError(MeasurementError):
    """A qubit was measured twice; measurement is destructive (paper §2)."""


class GameError(ReproError):
    """Base class for errors in the non-local game framework."""


class StrategyError(GameError):
    """A strategy is incompatible with the game it is asked to play."""


class SolverError(ReproError):
    """The SDP solver failed to converge or received an infeasible problem."""


class SimulationError(ReproError):
    """Base class for discrete-event simulation errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a finished environment."""


class ResourceError(SimulationError):
    """Misuse of a simulated resource (double release, negative capacity)."""


class NetworkError(ReproError):
    """Base class for errors in the network substrate."""


class HardwareError(ReproError):
    """Base class for errors in the hardware realism models."""


class ConfigurationError(ReproError):
    """A component received an invalid or inconsistent configuration."""
