"""Command-line interface: reproduce the paper's results from a shell.

Usage::

    python -m repro chsh
    python -m repro fig3 --games 20 --points 0 0.5 1.0
    python -m repro fig4 --steps 400 --loads 1.0 1.25
    python -m repro ecmp
    python -m repro budget --source-fidelity 0.97 --fiber-km 1.0 \
        --storage-us 50
    python -m repro values --p-exclusive 0.5 --vertices 5 --seed 7
    python -m repro regime --deadlines-ms 0.3 0.7 2.5 --distances-km 50 100
    python -m repro resume              # list interrupted journaled sweeps
    python -m repro resume <run key>    # restart one where it left off

Each subcommand prints the same tables the benchmark harness produces.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from collections.abc import Sequence

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _parse_telemetry(value: str) -> str:
    """Validate ``--telemetry``: off, summary, or ``json:PATH``."""
    if value in ("off", "summary"):
        return value
    if value.startswith("json:") and len(value) > len("json:"):
        return value
    raise argparse.ArgumentTypeError(
        f"expected 'off', 'summary', or 'json:PATH', got {value!r}"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum non-local games for networked systems "
        "(HotNets '25 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    # Shared by every subcommand so it can follow the command name
    # (``repro fig4 --telemetry json:run.json``).
    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--telemetry",
        type=_parse_telemetry,
        default="off",
        metavar="{off,summary,json:PATH}",
        help="run observability: 'summary' prints the run manifest and "
        "span tree, 'json:PATH' writes {manifest, spans} to PATH "
        "(default: off; see docs/observability.md)",
    )
    telemetry.add_argument(
        "--backend",
        default=None,
        metavar="{auto,numpy,numba}",
        help="array-kernel backend for the hot kernels; sets "
        "REPRO_BACKEND so sweep workers inherit it (default: "
        "REPRO_BACKEND, else auto — numba when importable, else numpy)",
    )
    telemetry.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the crash-safe sweep checkpoint journal "
        "(<cache dir>/journal/<run_key>.jsonl) for commands that sweep "
        "through SweepRunner; journaled sweeps resume with "
        "'python -m repro resume' after an interruption",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "chsh", help="CHSH game values (paper §2)", parents=[telemetry]
    )

    fig3 = sub.add_parser(
        "fig3", help="Fig 3: XOR-game advantage curve", parents=[telemetry]
    )
    fig3.add_argument("--games", type=int, default=20,
                      help="games per point (default 20)")
    fig3.add_argument("--points", type=float, nargs="+",
                      default=[0.0, 0.25, 0.5, 0.75, 1.0],
                      help="P(edge exclusive) grid")
    fig3.add_argument("--vertices", type=int, default=5)
    fig3.add_argument("--seed", type=int, default=0)
    fig3.add_argument("--jobs", type=int, default=None,
                      help="worker processes for the sweep (default: "
                      "REPRO_JOBS, then CPU count; results are "
                      "bit-identical to a serial run)")
    fig3.add_argument("--method", choices=("auto", "reference", "batched"),
                      default="auto",
                      help="per-point pipeline: 'batched' runs the "
                      "screening cascade + stacked ADMM, 'reference' the "
                      "serial per-game SDP loop, 'auto' the cascade "
                      "(per-game decisions are identical either way; "
                      "see docs/reproducing.md)")
    fig3.add_argument("--game-family",
                      choices=("xor", "colocation3", "random-nonlocal"),
                      default="xor",
                      help="game family per point: 'xor' (default) runs "
                      "the original affinity-graph pipeline; "
                      "'colocation3' and 'random-nonlocal' sample "
                      "general games (p becomes the family parameter) "
                      "and decide them with the see-saw/NPA cascade")
    fig3.add_argument("--no-cache", action="store_true",
                      help="skip the content-addressed result cache "
                      "(REPRO_CACHE_DIR, default .repro_cache)")

    fig4 = sub.add_parser(
        "fig4", help="Fig 4: queue length vs load", parents=[telemetry]
    )
    fig4.add_argument("--balancers", type=int, default=100)
    fig4.add_argument("--steps", type=int, default=600)
    fig4.add_argument("--loads", type=float, nargs="+",
                      default=[0.75, 1.0, 1.25, 1.5])
    fig4.add_argument("--seed", type=int, default=0)
    fig4.add_argument("--jobs", type=int, default=None,
                      help="worker processes for the sweep (default: "
                      "REPRO_JOBS, then CPU count; results are "
                      "bit-identical to a serial run)")
    fig4.add_argument("--engine", choices=("auto", "reference", "vectorized"),
                      default="auto",
                      help="simulation engine: 'vectorized' forces the "
                      "batched numpy engine, 'reference' the deque loop, "
                      "'auto' picks per point (see docs/reproducing.md)")
    fig4.add_argument("--fidelity", type=float, default=1.0,
                      help="Werner fidelity of the shared pairs "
                      "(default 1.0 = perfect Bell pairs)")
    fig4.add_argument("--availability", type=float, default=1.0,
                      help="probability a decision finds a live pair "
                      "(default 1.0 = never degraded)")
    fig4.add_argument("--outage", type=float, default=0.0,
                      help="mean outage-burst length in timesteps; 0 "
                      "(default) draws pair losses independently, > 0 "
                      "switches to correlated Gilbert-Elliott bursts at "
                      "the same availability")
    fig4.add_argument("--measurement-error", type=float, default=0.0,
                      help="per-QNIC detector flip probability applied "
                      "to both parties (default 0.0)")
    fig4.add_argument("--fallback", choices=("classical", "random"),
                      default="classical",
                      help="strategy a pair uses when its entangled pair "
                      "is lost: best classical paired strategy (default) "
                      "or uniform random routing")

    sub.add_parser(
        "ecmp",
        help="§4.2 collision games and reduction",
        parents=[telemetry],
    )

    budget = sub.add_parser(
        "budget", help="§3 hardware advantage budget", parents=[telemetry]
    )
    budget.add_argument("--source-fidelity", type=float, default=0.97)
    budget.add_argument("--fiber-km", type=float, default=1.0)
    budget.add_argument("--storage-us", type=float, default=50.0)
    budget.add_argument("--coherence-us", type=float, default=400.0)
    budget.add_argument("--pair-rate", type=float, default=1e6)

    values = sub.add_parser(
        "values",
        help="classical/quantum values of one random graph game",
        parents=[telemetry],
    )
    values.add_argument("--p-exclusive", type=float, default=0.5)
    values.add_argument("--vertices", type=int, default=5)
    values.add_argument("--seed", type=int, default=0)

    regime = sub.add_parser(
        "regime",
        help="latency-constrained advantage regime map "
        "(quantum / shared randomness / coordination)",
        parents=[telemetry],
    )
    regime.add_argument("--deadlines-ms", type=float, nargs="+",
                        default=[0.3, 0.7, 2.5],
                        help="decision deadlines in milliseconds")
    regime.add_argument("--distances-km", type=float, nargs="+",
                        default=[50.0, 100.0],
                        help="site separations in kilometers")
    regime.add_argument("--loads", type=float, nargs="+",
                        default=[0.7, 1.2],
                        help="offered load per server")
    regime.add_argument("--fidelities", type=float, nargs="+",
                        default=[0.7, 0.95],
                        help="Werner fidelities of the delivered pairs")
    regime.add_argument("--balancers", type=int, default=8,
                        help="DES fleet size (even; default 8)")
    regime.add_argument("--service-time-ms", type=float, default=1.0,
                        help="task execution time in milliseconds "
                        "(default 1.0; pick it near the RTT scale)")
    regime.add_argument("--horizon-services", type=float, default=120.0,
                        help="DES horizon in units of the service time")
    regime.add_argument("--pair-rate", type=float, default=5e3,
                        help="delivered Bell pairs per second per pair "
                        "of balancers (default 5000)")
    regime.add_argument("--storage-us", type=float, default=200.0,
                        help="QNIC pair-buffering window in microseconds")
    regime.add_argument("--seed", type=int, default=0)
    regime.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: "
                        "REPRO_JOBS, then CPU count; verdicts are "
                        "bit-identical to a serial run)")
    regime.add_argument("--no-cache", action="store_true",
                        help="skip the content-addressed result cache "
                        "(REPRO_CACHE_DIR, default .repro_cache)")
    regime.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full cell records to PATH")

    resume = sub.add_parser(
        "resume",
        help="list interrupted journaled sweeps, or resume one by run key",
        parents=[telemetry],
    )
    resume.add_argument(
        "run_key",
        nargs="?",
        default=None,
        help="journal run key (or unique prefix) to resume; omit to "
        "list every journaled sweep under the cache directory",
    )
    resume.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the resumed sweep "
                        "(resume is bit-identical at any jobs count)")

    mermin = sub.add_parser(
        "mermin",
        help="multiplayer Mermin game value table",
        parents=[telemetry],
    )
    mermin.add_argument("--max-players", type=int, default=5)

    groups = sub.add_parser(
        "groups",
        help="Fig 4 with k-party balancer groups: GHZ vs Bell pairs vs "
        "classical groups (§4.2 probe)",
        parents=[telemetry],
    )
    groups.add_argument("--balancers", type=int, default=96,
                        help="fleet size (pick a multiple of the group "
                        "size; leftovers route uniformly)")
    groups.add_argument("--steps", type=int, default=600)
    groups.add_argument("--loads", type=float, nargs="+",
                        default=[0.75, 1.0, 1.25, 1.5])
    groups.add_argument("--group-size", type=int, default=4,
                        help="balancers per entangled group (default 4)")
    groups.add_argument("--seed", type=int, default=0)
    groups.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: "
                        "REPRO_JOBS, then CPU count; results are "
                        "bit-identical to a serial run)")
    groups.add_argument("--engine", choices=("auto", "reference", "vectorized"),
                        default="auto",
                        help="simulation engine (see docs/reproducing.md)")

    calibrate = sub.add_parser(
        "calibrate",
        help="finite-sample CHSH calibration of a Werner state",
        parents=[telemetry],
    )
    calibrate.add_argument("--fidelity", type=float, default=0.95)
    calibrate.add_argument("--samples", type=int, default=5000)
    calibrate.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_chsh() -> None:
    from repro.analysis import format_table
    from repro.games import (
        CHSH_CLASSICAL_VALUE,
        CHSH_QUANTUM_VALUE,
        chsh_game,
        exact_win_probability,
        optimal_quantum_strategy,
    )

    game = chsh_game()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["classical value (brute force)", game.classical_value()],
                ["classical value (paper)", CHSH_CLASSICAL_VALUE],
                [
                    "quantum value (paper angles)",
                    exact_win_probability(game, optimal_quantum_strategy()),
                ],
                ["quantum value (paper)", CHSH_QUANTUM_VALUE],
            ],
            title="CHSH game (win iff a^b == x&y)",
            float_format="{:.6f}",
        )
    )


def _fig3_point(config: dict, seed: int) -> float:
    """One Fig 3 sweep point: advantage probability at one (vertices, p).

    The point's RNG derives from the root seed and the point's own
    parameters through :class:`~repro.sim.RandomStreams`, so every point
    is a pure function of (config, seed): values do not depend on point
    order or on which other points run (regression-tested), and the
    stream name matches the Fig 3 benchmark's derivation.
    """
    from repro.games import advantage_probability
    from repro.sim import RandomStreams

    family = config.get("family", "xor")
    if family == "xor":
        stream_name = f"fig3:v={config['vertices']}:p={config['p']}"
    else:
        stream_name = (
            f"fig3:{family}:v={config['vertices']}:p={config['p']}"
        )
    rng = RandomStreams(seed).stream(stream_name)
    return advantage_probability(
        config["vertices"],
        config["p"],
        config["games"],
        rng,
        method=config["method"],
        game_family=family,
    )


def _fig3_argv(args: argparse.Namespace) -> list[str]:
    """Rebuild a ``fig3`` argv from parsed args (journaled for resume)."""
    argv = [
        "fig3",
        "--games", str(args.games),
        "--points", *(str(p) for p in args.points),
        "--vertices", str(args.vertices),
        "--seed", str(args.seed),
        "--method", args.method,
        "--game-family", args.game_family,
    ]
    if args.no_cache:
        argv.append("--no-cache")
    return argv


def _cmd_fig3(args: argparse.Namespace) -> None:
    from repro.analysis import format_table
    from repro.exec import SweepRunner

    runner = SweepRunner(
        _fig3_point,
        jobs=args.jobs,
        cache=not args.no_cache,
        label="fig3",
        journal=not getattr(args, "no_journal", False),
        journal_meta={"argv": _fig3_argv(args)},
    )
    report = runner.run(
        [
            (
                {
                    "vertices": args.vertices,
                    "p": float(p),
                    "games": args.games,
                    "method": args.method,
                    "family": args.game_family,
                },
                args.seed,
            )
            for p in args.points
        ]
    )
    rows = [
        [p, prob] for p, prob in zip(args.points, report.values())
    ]
    if args.game_family == "xor":
        parameter_label = "P(edge exclusive)"
        title = (
            f"Fig 3: {args.vertices}-vertex graphs, "
            f"{args.games} games/point"
        )
    else:
        parameter_label = "family parameter p"
        title = (
            f"Fig 3 ({args.game_family} family): "
            f"{args.games} games/point"
        )
    print(
        format_table(
            [parameter_label, "P(quantum advantage)"],
            rows,
            title=title,
        )
    )


def _cmd_fig4(args: argparse.Namespace) -> None:
    from repro.analysis import FigureData, format_figure, format_table
    from repro.lb import (
        CHSHPairedAssignment,
        RandomAssignment,
        make_degraded_chsh,
        sweep_load,
    )

    degraded = (
        args.fidelity != 1.0
        or args.availability != 1.0
        or args.outage > 0.0
        or args.measurement_error != 0.0
    )
    runs: list[tuple[str, object, dict | None]] = [
        ("classical random", RandomAssignment, None)
    ]
    if degraded:
        runs.append(
            (
                "quantum CHSH (degraded)",
                make_degraded_chsh,
                {
                    "fidelity": args.fidelity,
                    "availability": args.availability,
                    "mean_outage_steps": args.outage,
                    "fallback": args.fallback,
                    "measurement_error": args.measurement_error,
                },
            )
        )
    else:
        runs.append(("quantum CHSH", CHSHPairedAssignment, None))

    figure = FigureData(
        title=f"Fig 4: N={args.balancers}, {args.steps} steps",
        x_label="load N/M",
        y_label="mean queue length",
    )
    degradation_rows = []
    for name, factory, policy_kwargs in runs:
        points = sweep_load(
            factory,
            num_balancers=args.balancers,
            loads=args.loads,
            timesteps=args.steps,
            seed=args.seed,
            jobs=args.jobs,
            engine=args.engine,
            policy_kwargs=policy_kwargs,
        )
        figure.add(
            name,
            [p.load for p in points],
            [p.result.mean_queue_length for p in points],
        )
        for p in points:
            report = p.result.degradation
            if report is not None:
                degradation_rows.append(
                    [
                        p.load,
                        report.quantum_decision_rate,
                        report.fallback_fraction,
                        report.quantum_win_probability,
                        report.fallback_win_probability,
                        report.effective_win_probability,
                    ]
                )
    print(format_figure(figure))
    if degradation_rows:
        print()
        print(
            format_table(
                [
                    "load N/M",
                    "quantum rate",
                    "fallback frac",
                    "P(win|quantum)",
                    "P(win|fallback)",
                    "P(win) effective",
                ],
                degradation_rows,
                title="Degradation report "
                f"(fidelity={args.fidelity}, "
                f"availability={args.availability}, "
                f"outage={args.outage}, "
                f"meas. error={args.measurement_error}, "
                f"fallback={args.fallback})",
                float_format="{:.4f}",
            )
        )


def _cmd_ecmp() -> None:
    from repro.analysis import format_table
    from repro.ecmp import CollisionGame, seesaw_quantum_value

    game = CollisionGame(3, 2, 2)
    seesaw = seesaw_quantum_value(game, restarts=3, iterations=30, seed=0)
    print(
        format_table(
            ["strategy", "win probability"],
            [
                ["independent random", game.random_strategy_value()],
                ["best classical", game.classical_value()],
                ["see-saw quantum search", seesaw.value],
            ],
            title="Collision game (3 switches, 2 active, 2 paths)",
            float_format="{:.6f}",
        )
    )
    print(
        "\nno quantum advantage found — consistent with the paper's "
        "§4.2 conjecture"
    )


def _cmd_budget(args: argparse.Namespace) -> None:
    from repro.analysis import format_table
    from repro.hardware import (
        QNIC,
        EntanglementDistributor,
        FiberChannel,
        SPDCSource,
        evaluate_budget,
    )

    source = SPDCSource(
        pair_rate=args.pair_rate, fidelity=args.source_fidelity
    )
    fiber = FiberChannel(length_m=args.fiber_km * 1000.0)
    qnic = QNIC(
        storage_limit=max(args.storage_us, 1.0) * 1e-6 * 2,
        coherence_time=args.coherence_us * 1e-6,
    )
    dist = EntanglementDistributor(source, fiber, fiber, qnic, qnic)
    budget = evaluate_budget(
        dist,
        storage_a=args.storage_us * 1e-6,
        storage_b=args.storage_us * 1e-6,
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ["delivered Bell fidelity", budget.bell_fidelity],
                ["CHSH win probability", budget.chsh_win_probability],
                ["advantage vs classical", budget.advantage],
                ["quantum advantage?", "yes" if budget.has_advantage else "NO"],
                ["delivered pairs/s", budget.delivered_pair_rate],
            ],
            title="End-to-end hardware budget",
            float_format="{:.6f}",
        )
    )


def _cmd_values(args: argparse.Namespace) -> None:
    from repro.analysis import format_table
    from repro.games import (
        random_affinity_graph,
        xor_game_from_graph,
        xor_quantum_value,
    )

    rng = np.random.default_rng(args.seed)
    graph = random_affinity_graph(args.vertices, args.p_exclusive, rng)
    game = xor_game_from_graph(graph)
    value = xor_quantum_value(game)
    print(f"graph: {graph}")
    print(
        format_table(
            ["quantity", "value"],
            [
                ["classical value", value.classical_value],
                ["quantum value (SDP)", value.quantum_value],
                ["rigorous upper bound", (1 + value.quantum_bias_upper) / 2],
                ["advantage", value.advantage],
            ],
            title="Induced XOR game",
            float_format="{:.6f}",
        )
    )


def _cmd_regime(args: argparse.Namespace) -> None:
    from repro.analysis import format_table
    from repro.lb.regime import VERDICT_LETTERS, regime_map

    result = regime_map(
        deadlines=[d * 1e-3 for d in args.deadlines_ms],
        distances_m=[km * 1000.0 for km in args.distances_km],
        loads=args.loads,
        fidelities=args.fidelities,
        num_balancers=args.balancers,
        service_time=args.service_time_ms * 1e-3,
        horizon_services=args.horizon_services,
        pair_rate=args.pair_rate,
        storage_limit=args.storage_us * 1e-6,
        seed=args.seed,
        jobs=args.jobs,
        cache=not args.no_cache,
    )
    for distance, fidelity, grid in result.slices():
        rows = [
            [f"{deadline * 1e3:g} ms", *row]
            for deadline, row in zip(result.deadlines, grid)
        ]
        print(
            format_table(
                ["deadline", *(f"load {load:g}" for load in result.loads)],
                rows,
                title=f"Regime map: distance {distance / 1000:g} km, "
                f"fidelity {fidelity:g}",
            )
        )
        print()
    legend = ", ".join(
        f"{letter} = {verdict}" for verdict, letter in VERDICT_LETTERS.items()
    )
    print(f"legend: {legend}")
    counts = result.counts()
    print(
        "cells: "
        + ", ".join(f"{verdict} {n}" for verdict, n in counts.items())
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"cell records written to {args.json}")


def _cmd_resume(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    from repro.analysis import format_table
    from repro.exec import list_journals

    states = list_journals()
    if args.run_key is None:
        if not states:
            print("no journaled sweeps found (nothing to resume)")
            return
        rows = []
        for state in states:
            header = state.header or {}
            total = state.total
            done = state.completed
            status = (
                "complete"
                if total is not None and done >= total
                else "interrupted"
            )
            meta = header.get("meta") or {}
            command = " ".join(meta.get("argv", [])) or "-"
            rows.append(
                [
                    header.get("run_key", "?"),
                    header.get("label", "?"),
                    f"{done}/{total if total is not None else '?'}",
                    status,
                    command,
                ]
            )
        print(
            format_table(
                ["run key", "label", "points", "status", "command"],
                rows,
                title="Journaled sweeps (python -m repro resume <run key>)",
            )
        )
        return
    matches = [
        state
        for state in states
        if state.header is not None
        and str(state.header.get("run_key", "")).startswith(args.run_key)
    ]
    if not matches:
        raise SystemExit(
            f"no journaled sweep matches run key {args.run_key!r} "
            "(run 'python -m repro resume' to list them)"
        )
    if len(matches) > 1:
        keys = ", ".join(m.header["run_key"] for m in matches)
        raise SystemExit(
            f"run key prefix {args.run_key!r} is ambiguous: {keys}"
        )
    header = matches[0].header
    meta = header.get("meta") or {}
    argv = meta.get("argv")
    if not argv:
        raise SystemExit(
            f"journal {header.get('run_key')} has no recorded command "
            "(it was not started from the CLI); resume it by re-running "
            "the original sweep — journaled points replay automatically"
        )
    if args.jobs is not None:
        argv = [*argv, "--jobs", str(args.jobs)]
    done = matches[0].completed
    total = matches[0].total
    print(
        f"resuming [{header.get('label')}] {header.get('run_key')}: "
        f"{done}/{total} points journaled; re-running: {' '.join(argv)}"
    )
    _dispatch(parser, parser.parse_args(argv))


def _cmd_mermin(args: argparse.Namespace) -> None:
    from repro.analysis import format_table
    from repro.games import (
        mermin_classical_value,
        mermin_game,
        mermin_optimal_strategy,
    )

    if args.max_players < 3:
        raise SystemExit("--max-players must be at least 3")
    rows = []
    for n in range(3, args.max_players + 1):
        game = mermin_game(n)
        quantum = game.quantum_value_of_strategy(mermin_optimal_strategy(n))
        rows.append([n, mermin_classical_value(n), quantum])
    print(
        format_table(
            ["players", "classical value", "GHZ quantum value"],
            rows,
            title="Mermin parity games",
            float_format="{:.6f}",
        )
    )


def _cmd_groups(args: argparse.Namespace) -> None:
    from repro.analysis import FigureData, format_figure, format_table
    from repro.lb import (
        CHSHPairedAssignment,
        ClassicalGroupAssignment,
        GHZGroupAssignment,
        RandomAssignment,
        knee_load,
        sweep_load,
    )

    k = args.group_size
    if k < 2:
        raise SystemExit("--group-size must be at least 2")
    runs: list[tuple[str, object, dict | None]] = [
        ("classical random", RandomAssignment, None),
        ("quantum CHSH pairs", CHSHPairedAssignment, None),
        (f"GHZ groups (k={k})", GHZGroupAssignment, {"group_size": k}),
        (
            f"classical groups (k={k})",
            ClassicalGroupAssignment,
            {"group_size": k},
        ),
    ]
    figure = FigureData(
        title=f"Group policies: N={args.balancers}, k={k}, "
        f"{args.steps} steps",
        x_label="load N/M",
        y_label="mean queue length",
    )
    knee_rows = []
    for name, factory, policy_kwargs in runs:
        points = sweep_load(
            factory,
            num_balancers=args.balancers,
            loads=args.loads,
            timesteps=args.steps,
            seed=args.seed,
            jobs=args.jobs,
            engine=args.engine,
            policy_kwargs=policy_kwargs,
        )
        figure.add(
            name,
            [p.load for p in points],
            [p.result.mean_queue_length for p in points],
        )
        knee_rows.append([name, knee_load(points)])
    print(format_figure(figure))
    print()
    print(
        format_table(
            ["policy", "knee load"],
            knee_rows,
            title="Knee loads (first load with mean queue >= 5)",
            float_format="{:.4f}",
        )
    )


def _cmd_calibrate(args: argparse.Namespace) -> None:
    from repro.analysis import format_table
    from repro.hardware import estimate_chsh
    from repro.hardware.calibration import S_CLASSICAL, S_TSIRELSON
    from repro.quantum import werner_state

    rng = np.random.default_rng(args.seed)
    estimate = estimate_chsh(
        werner_state(args.fidelity), args.samples, rng
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ["true Werner fidelity", args.fidelity],
                ["estimated S", estimate.s_value],
                ["S stderr", estimate.s_stderr],
                ["classical bound", S_CLASSICAL],
                ["Tsirelson bound", S_TSIRELSON],
                ["estimated fidelity", estimate.estimated_fidelity()],
                [
                    "certified non-classical?",
                    "yes" if estimate.certifies_nonclassicality else "NO",
                ],
            ],
            title=f"CHSH calibration ({args.samples} samples/setting)",
            float_format="{:.6f}",
        )
    )


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    if args.command == "chsh":
        _cmd_chsh()
    elif args.command == "fig3":
        _cmd_fig3(args)
    elif args.command == "fig4":
        _cmd_fig4(args)
    elif args.command == "ecmp":
        _cmd_ecmp()
    elif args.command == "budget":
        _cmd_budget(args)
    elif args.command == "values":
        _cmd_values(args)
    elif args.command == "regime":
        _cmd_regime(args)
    elif args.command == "resume":
        _cmd_resume(parser, args)
    elif args.command == "mermin":
        _cmd_mermin(args)
    elif args.command == "groups":
        _cmd_groups(args)
    elif args.command == "calibrate":
        _cmd_calibrate(args)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")


def _cli_manifest(args, registry, wall: float):
    """Build the command-level RunManifest from the captured registry."""
    from repro.obs import RunManifest

    snapshot = registry.snapshot()
    counters = snapshot.get("counters", {})
    from repro.backend import resolve_backend_name

    config = {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in ("command", "telemetry")
    }
    seed = getattr(args, "seed", None)
    return RunManifest.collect(
        "cli",
        seeds=() if seed is None else (int(seed),),
        engine=getattr(args, "engine", None),
        backend=resolve_backend_name(),
        config={"command": args.command, **config},
        cache_hits=counters.get("cache.hit", 0),
        cache_misses=counters.get("cache.miss", 0),
        metrics=snapshot,
        wall_seconds=wall,
    )


def _emit_telemetry(mode: str, manifest, spans) -> None:
    from repro.obs import format_span_tree

    if mode == "summary":
        print()
        print("== telemetry ==")
        print(manifest.to_json())
        tree = format_span_tree(spans)
        if tree:
            print(tree)
        return
    path = mode[len("json:"):]
    payload = {
        "manifest": manifest.to_dict(),
        "spans": [entry.to_dict() for entry in spans],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"telemetry written to {path}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    backend = getattr(args, "backend", None)
    if backend is not None:
        from repro.backend import resolve_backend_name
        from repro.errors import ConfigurationError

        # Validate eagerly (unknown names fail before any work) and
        # publish through the environment so forked sweep workers and
        # every dispatch site resolve the same backend.
        try:
            resolve_backend_name(backend)
        except ConfigurationError as exc:
            parser.error(str(exc))
        os.environ["REPRO_BACKEND"] = backend
    mode = getattr(args, "telemetry", "off")
    if mode == "off":
        _dispatch(parser, args)
        return 0

    from repro.obs import capture, clear_spans, finished_spans
    from repro.obs import spans as _spans

    clear_spans()
    start = time.perf_counter()
    with capture() as registry, _spans.span(f"cli.{args.command}"):
        _dispatch(parser, args)
    wall = time.perf_counter() - start
    manifest = _cli_manifest(args, registry, wall)
    _emit_telemetry(mode, manifest, finished_spans())
    return 0
