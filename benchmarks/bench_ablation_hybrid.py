"""§4.1 caveat ablation: classical/hybrid dedicated-server strategies
"would not work if there are multiple subtypes of type-C tasks that do
not like being mixed".

Per-round metrics over same-server task pairs:

- *good* — same-subtype type-C pairs sharing a server (cache wins);
- *bad mix* — cross-subtype type-C pairs sharing a server;
- *other* — any shared pair involving a type-E task.

With one subtype the dedicated pool is excellent (every CC colocation is
good). With two incompatible subtypes the subtype-blind pool colocates
indiscriminately (good:bad ~ 1), while the XOR-game quantum pairs —
playing the frustrated-triangle affinity game, which has a genuine
quantum advantage (classical 7/9 vs quantum 5/6) — skew their
colocations toward compatible pairs.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.games import AffinityGraph
from repro.lb import (
    DedicatedPoolAssignment,
    RandomAssignment,
    XORPairedAssignment,
)
from repro.lb.xor_lb import ClassicalGraphPairedAssignment
from repro.net.packet import TaskType
from repro.net.workload import SubtypedTaskMix


def _round_scores(requests, choices):
    """(good colocations, bad subtype mixes, other conflicts)."""
    by_server: dict[int, list] = {}
    for request, server in zip(requests, choices):
        by_server.setdefault(server, []).append(request)
    good = bad_mix = other = 0
    for members in by_server.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                both_c = (
                    a.task_type is TaskType.COLOCATE
                    and b.task_type is TaskType.COLOCATE
                )
                if both_c and a.subtype == b.subtype:
                    good += 1
                elif both_c:
                    bad_mix += 1
                else:
                    other += 1
    return good, bad_mix, other


def _evaluate(policy, adapter, num_balancers, rounds, seed, num_subtypes):
    rng_tasks = np.random.default_rng(np.random.SeedSequence([seed, 1]))
    rng_policy = np.random.default_rng(np.random.SeedSequence([seed, 2]))
    mix = SubtypedTaskMix(num_balancers, num_subtypes=num_subtypes)
    totals = Counter()
    for _ in range(rounds):
        requests = mix.draw_requests(rng_tasks)
        good, bad, other = _round_scores(
            requests, adapter(policy, requests, rng_policy)
        )
        totals["good"] += good
        totals["bad"] += bad
        totals["other"] += other
    return (
        totals["good"] / rounds,
        totals["bad"] / rounds,
        totals["other"] / rounds,
    )


def _types_only(policy, requests, rng):
    return policy.assign([r.task_type for r in requests], rng)


def _full_requests(policy, requests, rng):
    return policy.assign(requests, rng)


def bench_hybrid_breaks_with_subtypes(benchmark):
    num_balancers, num_servers = 40, 20
    rounds = scaled(300)
    # Vertex 0 = type-E; vertices 1, 2 = incompatible C subtypes. All
    # cross pairs exclusive; same-subtype colocates; E-E exclusive.
    affinity = AffinityGraph.complete(3, {(0, 1), (0, 2), (1, 2)})

    single_pool_good, _, _ = _evaluate(
        DedicatedPoolAssignment(num_balancers, num_servers, pool_fraction=0.5),
        _types_only,
        num_balancers,
        rounds,
        seed=19,
        num_subtypes=1,
    )

    policies = [
        (
            "dedicated C-pool (subtype-blind)",
            DedicatedPoolAssignment(
                num_balancers, num_servers, pool_fraction=0.5
            ),
            _types_only,
        ),
        ("classical random", RandomAssignment(num_balancers, num_servers),
         _types_only),
        (
            "classical graph pairs",
            ClassicalGraphPairedAssignment(num_balancers, num_servers, affinity),
            _full_requests,
        ),
        (
            "quantum XOR pairs",
            XORPairedAssignment(num_balancers, num_servers, affinity),
            _full_requests,
        ),
    ]
    rows = []
    ratios = {}
    for name, policy, adapter in policies:
        good, bad, other = _evaluate(
            policy, adapter, num_balancers, rounds, seed=19, num_subtypes=2
        )
        ratio = good / max(bad, 1e-9)
        ratios[name] = ratio
        rows.append([name, good, bad, other, ratio])

    body = format_table(
        ["policy", "good/round", "bad mix/round", "other/round", "good:bad"],
        rows,
        title=f"2 incompatible C subtypes, N={num_balancers}, "
        f"M={num_servers}, {rounds} rounds",
        float_format="{:.2f}",
    )
    body += (
        f"\nsingle-subtype reference: pool achieves {single_pool_good:.2f} "
        "good colocations/round (all of them compatible — hybrid works there)"
        "\npaper §4.1: pools break with multiple C subtypes; only the "
        "quantum pairs colocate selectively (good:bad > 1)"
    )
    print_block("Ablation — hybrid dedicated-pool strategies", body)

    # The subtype-blind strategies cannot tell subtypes apart: ~1.0 ratio.
    assert ratios["dedicated C-pool (subtype-blind)"] < 1.15
    assert ratios["classical random"] < 1.15
    assert ratios["classical graph pairs"] < 1.15
    # The quantum XOR pairs skew colocation toward compatible subtypes.
    assert ratios["quantum XOR pairs"] > 1.25

    small = RandomAssignment(10, 5)
    mix = SubtypedTaskMix(10, num_subtypes=2)
    rng = np.random.default_rng(0)
    benchmark(
        lambda: _round_scores(
            mix.draw_requests(rng),
            small.assign([TaskType.COLOCATE] * 10, rng),
        )
    )
