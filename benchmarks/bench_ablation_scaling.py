"""Scale-invariance ablation: "the results depend primarily on the ratio
N/M and remain largely consistent as N varies" (paper §4.1).

Runs the Fig 4 comparison at fixed loads for N in {20, 50, 100, 200} and
checks the curves collapse.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.lb import CHSHPairedAssignment, RandomAssignment, run_timestep_simulation


def bench_load_ratio_invariance(benchmark):
    timesteps = scaled(700)
    load = 1.25
    sizes = [20, 50, 100, 200]
    rows = []
    ratios = []
    for n in sizes:
        m = round(n / load)
        classical = run_timestep_simulation(
            RandomAssignment(n, m), timesteps=timesteps, seed=11
        )
        quantum = run_timestep_simulation(
            CHSHPairedAssignment(n, m), timesteps=timesteps, seed=11
        )
        ratio = quantum.mean_queue_length / classical.mean_queue_length
        ratios.append(ratio)
        rows.append(
            [
                n,
                m,
                classical.mean_queue_length,
                quantum.mean_queue_length,
                ratio,
            ]
        )

    body = format_table(
        ["N", "M", "classical queue", "quantum queue", "quantum/classical"],
        rows,
        title=f"Fixed load N/M = {load}, varying N ({timesteps} steps)",
    )
    body += "\npaper: results depend primarily on N/M, consistent as N varies"
    print_block("Ablation — N-scaling at fixed load", body)

    # Quantum improves at every scale, and the improvement ratio is
    # broadly consistent across N.
    assert all(r < 0.95 for r in ratios)
    assert np.std(ratios) < 0.15

    benchmark.pedantic(
        lambda: run_timestep_simulation(
            RandomAssignment(20, 16), timesteps=100, seed=1
        ),
        rounds=3,
        iterations=1,
    )
