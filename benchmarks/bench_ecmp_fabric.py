"""§4.2 context: what ECMP coordination would be worth — and why quantum
cannot buy it.

Flow-level fabric simulation: per-flow hashing (deployed practice),
uniform random, and a least-loaded oracle that *sees* every path's
state — i.e. full coordination, the thing whose latency cost motivates
randomization. The FCT gap between the oracle and the hash is the prize;
the §4.2 reduction + conjecture benches show quantum correlations cannot
claim it without communication.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.ecmp import run_fabric_experiment


def bench_fabric_policies(benchmark):
    horizon = float(scaled(1000))
    config = dict(
        num_switches=8,
        num_paths=4,
        flow_rate=0.075,  # ~60% fabric utilization
        horizon=horizon,
        seed=2,
    )
    rows = []
    results = {}
    for policy in ("per-flow", "random", "least-loaded"):
        result = run_fabric_experiment(policy=policy, **config)
        results[policy] = result
        rows.append(
            [policy, result.mean_fct, result.p95_fct, result.flows]
        )
    body = format_table(
        ["path policy", "mean FCT", "p95 FCT", "flows"],
        rows,
        title="Flow completion time over a 4-path fabric at ~60% load "
        f"(8 switches, horizon {horizon:.0f})",
        float_format="{:.3f}",
    )
    body += (
        "\nthe oracle's FCT advantage is the value of coordination; "
        "\n§4.2: no-communication quantum strategies cannot capture it"
    )
    print_block("§4.2 context — ECMP fabric", body)

    assert results["least-loaded"].mean_fct < results["random"].mean_fct
    assert results["least-loaded"].mean_fct < results["per-flow"].mean_fct

    benchmark.pedantic(
        lambda: run_fabric_experiment(
            policy="per-flow",
            num_switches=4,
            num_paths=2,
            flow_rate=0.1,
            horizon=100.0,
            seed=1,
        ),
        rounds=3,
        iterations=1,
    )
