"""§4.2 conjecture evidence: no quantum advantage for ECMP collision games.

The paper conjectures pairwise entanglement offers no advantage for
collision avoidance. Evidence: see-saw ascent over arbitrary shared
states and measurements (a quantum *lower* bound) never exceeds the
classical value, across party counts and local dimensions.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.ecmp import (
    CollisionGame,
    random_strategy_search,
    seesaw_quantum_value,
)


def bench_conjecture_seesaw(benchmark):
    iterations = scaled(40)
    restarts = scaled(4)
    configs = [
        (CollisionGame(3, 2, 2), 2),
        (CollisionGame(3, 2, 2), 4),
        (CollisionGame(4, 2, 2), 2),
        (CollisionGame(5, 2, 2), 2),
    ]
    rows = []
    for game, local_dim in configs:
        classical = game.classical_value()
        result = seesaw_quantum_value(
            game,
            local_dim=local_dim,
            restarts=restarts,
            iterations=iterations,
            seed=0,
        )
        gap = result.value - classical
        rows.append(
            [
                f"({game.num_parties} parties, {game.num_active} active)",
                local_dim,
                classical,
                result.value,
                gap,
            ]
        )
        assert result.value <= classical + 1e-6, (
            f"see-saw exceeded classical for {game} — conjecture violated?"
        )

    body = format_table(
        ["game", "local dim", "classical", "see-saw quantum", "gap"],
        rows,
        title=f"See-saw quantum search vs classical value "
        f"({restarts} restarts, {iterations} iterations)",
        float_format="{:.6f}",
    )
    body += (
        "\npaper conjecture: gap = 0 for all ECMP-style collision games "
        "(supported: see-saw never beats classical)"
    )
    print_block("§4.2 — conjecture evidence", body)

    small = CollisionGame(3, 2, 2)
    benchmark.pedantic(
        lambda: seesaw_quantum_value(small, restarts=1, iterations=10, seed=3),
        rounds=3,
        iterations=1,
    )


def bench_conjecture_multipath_random_search(benchmark):
    """Outcome-count-agnostic evidence: random projective strategies on
    three-path games never beat the classical value either."""
    samples = scaled(150)
    configs = [
        CollisionGame(3, 2, 3),
        CollisionGame(4, 2, 3),
        CollisionGame(4, 3, 3),
    ]
    rows = []
    for game in configs:
        classical = game.classical_value()
        best = random_strategy_search(game, samples=samples, seed=0)
        rows.append(
            [
                f"({game.num_parties} parties, {game.num_active} active, "
                f"{game.num_paths} paths)",
                classical,
                best,
            ]
        )
        assert best <= classical + 1e-9

    body = format_table(
        ["game", "classical", f"best of {samples} random quantum strategies"],
        rows,
        title="Multi-path collision games: random-strategy search",
        float_format="{:.6f}",
    )
    body += (
        "\nweaker than see-saw (random, not optimized) but covers >2 paths;"
        "\nno sampled strategy approaches the classical value"
    )
    print_block("§4.2 — conjecture evidence, 3 paths", body)

    benchmark.pedantic(
        lambda: random_strategy_search(
            CollisionGame(3, 2, 3), samples=10, seed=1
        ),
        rounds=3,
        iterations=1,
    )


def bench_classical_collision_table(benchmark):
    """Classical reference table across (N, M) — the structure the paper
    describes: with at most M active switches and M paths, fixed distinct
    assignments are perfect only when parties are few enough."""
    configs = [
        CollisionGame(3, 2, 2),
        CollisionGame(4, 2, 2),
        CollisionGame(5, 2, 2),
        CollisionGame(4, 2, 3),
        CollisionGame(4, 3, 3),
        CollisionGame(5, 3, 3),
    ]
    rows = []
    for game in configs:
        rows.append(
            [
                game.num_parties,
                game.num_active,
                game.num_paths,
                game.random_strategy_value(),
                game.classical_value(),
            ]
        )
    body = format_table(
        ["N switches", "active", "paths", "random", "best classical"],
        rows,
        title="Classical collision-game values",
        float_format="{:.6f}",
    )
    print_block("§4.2 — classical collision landscape", body)

    benchmark(lambda: CollisionGame(5, 3, 3).classical_value())
