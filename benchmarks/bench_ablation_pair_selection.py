"""Design ablation (DESIGN.md §5): per-round server-pair selection.

The CHSH policy draws a fresh random server pair for each balancer pair
every round. The alternative — sticky pairs that keep their first draw —
is cheaper in shared randomness but catastrophic for load spread: with
N/2 pairs choosing from M servers once, coupon-collector gaps leave
servers permanently idle and the chosen ones permanently overloaded.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.games.chsh import colocation_quantum_strategy
from repro.lb import RandomAssignment, run_timestep_simulation
from repro.lb.policies import GamePairedAssignment


def bench_pair_selection_policy(benchmark):
    n, m = 60, 48
    timesteps = scaled(600)
    strategy = colocation_quantum_strategy()
    rows = []
    results = {}
    for label, policy in (
        ("fresh pair per round", GamePairedAssignment(n, m, strategy)),
        (
            "sticky pairs",
            GamePairedAssignment(n, m, strategy, sticky_servers=True),
        ),
        ("random baseline", RandomAssignment(n, m)),
    ):
        result = run_timestep_simulation(policy, timesteps=timesteps, seed=3)
        results[label] = result.mean_queue_length
        rows.append([label, result.mean_queue_length])

    body = format_table(
        ["pair-selection policy", "mean queue length"],
        rows,
        title=f"CHSH pairs at load 1.25 (N={n}, M={m}, {timesteps} steps)",
    )
    body += (
        "\nsticky pairs strand servers (coupon-collector gaps) and erase"
        "\nthe quantum benefit entirely — the per-round redraw is load-"
        "\nbearing, not incidental"
    )
    print_block("Ablation — server-pair selection", body)

    assert results["fresh pair per round"] < results["random baseline"]
    assert results["sticky pairs"] > results["random baseline"]

    small = GamePairedAssignment(20, 16, strategy, sticky_servers=True)
    benchmark.pedantic(
        lambda: run_timestep_simulation(small, timesteps=100, seed=1),
        rounds=3,
        iterations=1,
    )
