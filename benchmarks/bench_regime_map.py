"""Latency-constrained advantage regime map (phase diagram).

Sweeps (deadline, distance, load, fidelity) cells through
:func:`repro.lb.regime.regime_map` and prints the phase diagrams the
``python -m repro regime`` CLI produces: which coordination technology —
pre-shared CHSH pairs, classical shared randomness, or the §4.1
one-message communicating balancer — wins each operating point.

At full scale (``REPRO_BENCH_SCALE >= 1``) the default grid must show
all three phases and respect the light-cone structure: every cell below
the one-way bound is classical, and the quantum region never grows as
fidelity drops. A trajectory file (``BENCH_regime.json``, override via
``REPRO_BENCH_REGIME_JSON``) records the classified cells and sweep
wall-clock for trend tracking; CI uploads it next to the other BENCH
artifacts.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks._common import print_block, scaled, sweep_cache, sweep_jobs
from repro.analysis import format_table
from repro.lb.regime import (
    VERDICT_LETTERS,
    VERDICT_QUANTUM,
    regime_map_detailed,
)


def bench_regime_map(benchmark):
    horizon_services = scaled(120, 40)
    full_scale = horizon_services >= 120
    start = time.perf_counter()
    result, report = regime_map_detailed(
        horizon_services=horizon_services,
        jobs=sweep_jobs(),
        cache=sweep_cache(),
    )
    wall = time.perf_counter() - start

    body_parts = []
    for distance, fidelity, grid in result.slices():
        rows = [
            [f"{deadline * 1e3:g} ms", *row]
            for deadline, row in zip(result.deadlines, grid)
        ]
        body_parts.append(
            format_table(
                ["deadline", *(f"load {load:g}" for load in result.loads)],
                rows,
                title=f"distance {distance / 1000:g} km, "
                f"fidelity {fidelity:g}",
            )
        )
    counts = result.counts()
    legend = ", ".join(
        f"{letter} = {verdict}" for verdict, letter in VERDICT_LETTERS.items()
    )
    body_parts.append(
        f"legend: {legend}\n"
        + "cells: "
        + ", ".join(f"{verdict} {n}" for verdict, n in counts.items())
        + f"\nhorizon_services={horizon_services} (REPRO_BENCH_SCALE), "
        f"{wall:.2f}s wall, jobs={sweep_jobs()}"
    )
    print_block(
        "Regime map — latency-constrained advantage phases",
        "\n\n".join(body_parts),
    )

    trajectory = {
        "benchmark": "regime_map",
        "horizon_services": horizon_services,
        "full_scale": full_scale,
        "wall_seconds": wall,
        "counts": counts,
        "map": result.to_dict(),
    }
    out_path = os.environ.get("REPRO_BENCH_REGIME_JSON", "BENCH_regime.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Light-cone floor holds at every scale: below the one-way bound no
    # cross-site strategy exists.
    for cell in result.cells:
        if not cell.remote_routing_feasible:
            assert cell.verdict == "shared-randomness", (
                f"cell {cell.key} beat the light cone"
            )
    # The quantum region never grows as fidelity drops (same deadline,
    # distance, load).
    fidelities = sorted(result.fidelities)
    for deadline in result.deadlines:
        for distance in result.distances_m:
            for load in result.loads:
                quantum_by_f = [
                    result.cell(deadline, distance, load, f).verdict
                    == VERDICT_QUANTUM
                    for f in fidelities
                ]
                for lower, higher in zip(quantum_by_f, quantum_by_f[1:]):
                    assert higher or not lower, (
                        f"quantum region grew as fidelity dropped at "
                        f"({deadline}, {distance}, {load})"
                    )
    if full_scale:
        assert all(counts[v] > 0 for v in counts), (
            f"default grid must show all three phases, got {counts}"
        )

    benchmark.pedantic(
        lambda: regime_map_detailed(
            deadlines=(0.3e-3, 2.5e-3),
            distances_m=(50_000.0,),
            loads=(1.2,),
            fidelities=(0.95,),
            horizon_services=min(horizon_services, 40),
            jobs=1,
            cache=False,
        ),
        rounds=1,
        iterations=1,
    )
