"""§4.1 caveat: "Our simulation assumes a setting where task execution
time is roughly equal to a round-trip time. If task execution were
longer, load balancers that communicate could perform better."

Continuous-time sweep of service time against a fixed coordination RTT.
Three policies: random (no information, no latency), quantum CHSH pairs
(correlation, no latency), and a communicating balancer that pays the
RTT per decision and then picks the least-loaded server.

Reproduced crossover: for short tasks the RTT dominates and the
zero-latency policies win; once execution time exceeds the RTT,
communication amortizes and the coordinated balancer takes over —
exactly the regime boundary the paper draws around its result.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.lb import run_des_experiment

RATIOS = (0.25, 0.5, 1.0, 2.0, 4.0)
RTT = 1.0


def bench_execution_time_vs_rtt(benchmark):
    horizon = float(scaled(200))
    rows = []
    results: dict[float, dict[str, float]] = {}
    for ratio in RATIOS:
        service_time = ratio * RTT
        per_policy = {}
        for policy in ("random", "quantum", "coordinated"):
            result = run_des_experiment(
                num_balancers=20,
                num_servers=16,
                policy=policy,
                horizon=horizon,
                arrival_rate=0.8 / service_time,  # constant utilization
                service_time=service_time,
                seed=2,
                coordination_rtt=RTT,
            )
            per_policy[policy] = result.delay_stats.mean
        results[ratio] = per_policy
        rows.append(
            [
                ratio,
                per_policy["random"],
                per_policy["quantum"],
                per_policy["coordinated"],
            ]
        )

    body = format_table(
        [
            "service time / RTT",
            "random delay",
            "quantum delay",
            "coordinated delay",
        ],
        rows,
        title=f"Mean request delay vs execution-time/RTT ratio "
        f"(RTT = {RTT}, constant utilization, horizon {horizon:.0f})",
        float_format="{:.3f}",
    )
    body += (
        "\npaper caveat reproduced: short tasks -> pay-per-decision RTT"
        "\ndominates, zero-latency (random/quantum) wins; long tasks ->"
        "\ncommunication amortizes and coordinated balancing takes over"
    )
    print_block("Ablation — task execution time vs RTT", body)

    # Short tasks: coordination's RTT makes it the worst option.
    assert results[0.25]["coordinated"] > results[0.25]["random"]
    # Long tasks: coordination wins outright.
    for ratio in (2.0, 4.0):
        assert results[ratio]["coordinated"] < results[ratio]["random"]
        assert results[ratio]["coordinated"] < results[ratio]["quantum"]

    benchmark.pedantic(
        lambda: run_des_experiment(
            num_balancers=8,
            num_servers=8,
            policy="coordinated",
            horizon=50.0,
            arrival_rate=0.5,
            seed=1,
        ),
        rounds=3,
        iterations=1,
    )
