"""Quantum value bounds for general games: see-saw vs NPA sandwich.

The ISSUE 9 probe: the see-saw lower bound and the level-"1+ab" NPA
upper bound must bracket the known quantum value of every corpus game
(CHSH, the 3-class colocation game, FFL, Magic Square) — the sandwich
``classical <= seesaw <= NPA`` is asserted as a hard gate at every
tier, not just recorded. Restart/iteration budgets and the cascade
batch size come from the shared ``SCALE_LADDER`` (``nonlocal_*``
keys), so the smoke tier in CI and the paper tier in docs name the
same points.

The timed section runs the full screening cascade
(:func:`repro.games.bounds.screen_nonlocal_games`) over a batch of
random general games — the Fig 3 ``--game-family`` hot path. The
trajectory JSON (``BENCH_nonlocal.json``, override via
``REPRO_BENCH_NONLOCAL_JSON``) records every corpus bracket and the
cascade stage counts for trend tracking; CI uploads it next to the
other BENCH artifacts.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np

from benchmarks._common import ladder, print_block, scale_tier
from repro.analysis import format_table
from repro.backend import resolve_backend_name
from repro.games import (
    chsh_nonlocal_game,
    ffl_game,
    magic_square_game,
    multi_class_colocation_game,
    quantum_value_bounds,
    sample_game_family,
    screen_nonlocal_games,
)

SEED = 13

#: (game factory, see-saw Hilbert-space dimension, known quantum value).
CORPUS = (
    (chsh_nonlocal_game, 2, math.cos(math.pi / 8) ** 2),
    (lambda: multi_class_colocation_game(3), 2, 5.0 / 6.0),
    (ffl_game, 2, 2.0 / 3.0),
    (magic_square_game, 4, 1.0),
)


def bench_nonlocal_value(benchmark):
    tier = scale_tier()
    restarts = ladder("nonlocal_restarts")
    iterations = ladder("nonlocal_iterations")
    cascade_games = ladder("nonlocal_cascade_games")

    trajectory = {
        "benchmark": "nonlocal_value",
        "tier": tier,
        "backend": resolve_backend_name(),
        "seed": SEED,
        "restarts": restarts,
        "iterations": iterations,
        "cascade_games": cascade_games,
        "corpus": [],
    }

    rows = []
    for factory, dim, known in CORPUS:
        game = factory()
        bounds = quantum_value_bounds(
            game,
            method="general",
            dim=dim,
            restarts=restarts,
            iterations=iterations,
            seed=SEED,
        )
        rows.append(
            [
                game.name,
                bounds.classical_value,
                bounds.lower_bound,
                known,
                bounds.upper_bound,
            ]
        )
        trajectory["corpus"].append(
            {
                "game": game.name,
                "dim": dim,
                "classical_value": bounds.classical_value,
                "seesaw_lower": bounds.lower_bound,
                "known_quantum_value": known,
                "npa_upper": bounds.upper_bound,
            }
        )
        # Hard gates: the sandwich must certify at every tier.
        assert bounds.classical_value <= bounds.lower_bound + 1e-9, (
            f"{game.name}: see-saw lower {bounds.lower_bound:.9f} below "
            f"classical {bounds.classical_value:.9f}"
        )
        assert bounds.lower_bound <= bounds.upper_bound + 1e-6, (
            f"{game.name}: see-saw lower {bounds.lower_bound:.9f} above "
            f"NPA upper {bounds.upper_bound:.9f}"
        )
        assert bounds.lower_bound <= known + 1e-7, (
            f"{game.name}: see-saw lower {bounds.lower_bound:.9f} exceeds "
            f"the known quantum value {known:.9f}"
        )
        assert bounds.upper_bound >= known - 1e-6, (
            f"{game.name}: NPA upper {bounds.upper_bound:.9f} cuts below "
            f"the known quantum value {known:.9f}"
        )

    # Timed section: the Fig 3 --game-family cascade over a fresh batch
    # of random general games each round.
    def run_cascade():
        rng = np.random.default_rng(SEED)
        games = sample_game_family(
            "random-nonlocal", 3, 0.6, cascade_games, rng
        )
        return screen_nonlocal_games(
            games, restarts=restarts, iterations=iterations, seed=SEED
        )

    report = benchmark.pedantic(run_cascade, rounds=3, iterations=1)
    trajectory["cascade_stage_counts"] = report.stage_counts()
    trajectory["cascade_advantage_fraction"] = float(
        report.verdicts.mean()
    )

    body = format_table(
        ["game", "classical", "seesaw lower", "known", "NPA upper"],
        rows,
        float_format="{:.9f}",
    )
    body += (
        f"\n\n{restarts} restarts x {iterations} iterations, seed "
        f"{SEED}, tier '{tier}'; cascade: {cascade_games} "
        f"random-nonlocal games -> stages {report.stage_counts()}"
    )
    print_block("Nonlocal game values — see-saw/NPA sandwich", body)

    out_path = os.environ.get(
        "REPRO_BENCH_NONLOCAL_JSON", "BENCH_nonlocal.json"
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
