"""Extension: workload-matched CHSH operators for skewed task mixes.

The paper's simulation fixes P(type-C) = 0.5. This extension (built on
the biased-non-local-game theory the paper cites [38]) asks what happens
for skewed workloads: the induced colocation game becomes a *biased*
CHSH game, its quantum value follows from the same Tsirelson SDP, and
the optimal measurement operators depend on the bias.

Findings regenerated here:

- the quantum advantage of the colocation game peaks at p = 0.5
  (+0.1036) and vanishes by |p - 0.5| >= 0.2 — skewed mixes are
  classically easy;
- away from p = 0.5 the paper's fixed angles fall *below* the classical
  value, while the matched operators never do.
"""

from __future__ import annotations

from benchmarks._common import print_block
from repro.analysis import format_table
from repro.games import exact_win_probability
from repro.games.biased import (
    biased_colocation_game,
    biased_game_values,
    matched_quantum_strategy,
)
from repro.games.chsh import colocation_quantum_strategy

BIASES = (0.3, 0.4, 0.45, 0.5, 0.55, 0.6, 0.7, 0.8)


def bench_biased_workload_values(benchmark):
    fixed_strategy = colocation_quantum_strategy()
    rows = []
    for p in BIASES:
        value = biased_game_values(p)
        game = biased_colocation_game(p).to_two_player_game()
        fixed = exact_win_probability(game, fixed_strategy)
        matched = exact_win_probability(game, matched_quantum_strategy(p))
        rows.append(
            [p, value.classical_value, fixed, matched, value.advantage]
        )
        # The matched strategy achieves the SDP optimum...
        assert matched >= value.quantum_value - 1e-5
        # ...and never falls below classical.
        assert matched >= value.classical_value - 1e-5

    body = format_table(
        [
            "P(type-C)",
            "classical",
            "fixed CHSH angles",
            "matched operators",
            "quantum advantage",
        ],
        rows,
        title="Biased colocation game: win probabilities vs workload skew",
        float_format="{:.4f}",
    )
    body += (
        "\nfinding: the advantage peaks at p=0.5 and dies by |p-0.5|>=0.2;"
        "\nfixed angles are actively harmful under skew — QNIC bases must"
        "\nbe provisioned per workload"
    )
    print_block("Extension — biased workloads", body)

    by_bias = {row[0]: row for row in rows}
    assert by_bias[0.5][4] > by_bias[0.4][4] > by_bias[0.3][4] - 1e-9
    # Fixed angles fall below classical under strong skew.
    assert by_bias[0.8][2] < by_bias[0.8][1]

    benchmark(lambda: biased_game_values(0.4))
