"""§2 reproduction: CHSH game values and marginal uniformity.

Paper claims: the best classical strategy wins with probability 0.75;
sharing a Bell pair and measuring at the stated angles wins with
probability cos^2(pi/8) ~= 0.85 (optimal); in the optimal quantum
strategy each party still outputs 0/1 with equal probability.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.games import (
    CHSH_CLASSICAL_VALUE,
    CHSH_QUANTUM_VALUE,
    chsh_game,
    exact_win_probability,
    optimal_classical_strategy,
    optimal_quantum_strategy,
    play_rounds,
)


def bench_chsh_values(benchmark):
    game = chsh_game()
    quantum = optimal_quantum_strategy()
    classical = optimal_classical_strategy()

    exact_quantum = exact_win_probability(game, quantum)
    exact_classical = exact_win_probability(game, classical)
    brute_force = game.classical_value()

    rng = np.random.default_rng(0)
    rounds = scaled(4000)
    mc_quantum = play_rounds(game, quantum, rounds, rng).win_rate
    mc_classical = play_rounds(game, classical, rounds, rng).win_rate

    marginals = []
    for x in (0, 1):
        for y in (0, 1):
            joint = quantum.joint_distribution(x, y)
            marginals.append(float(joint.sum(axis=1)[0]))

    rows = [
        ["classical (paper)", CHSH_CLASSICAL_VALUE, "0.75"],
        ["classical (brute force)", brute_force, "exact"],
        ["classical (strategy, exact)", exact_classical, "exact"],
        [f"classical (Monte Carlo, n={rounds})", mc_classical, "sampled"],
        ["quantum (paper)", CHSH_QUANTUM_VALUE, "cos^2(pi/8)"],
        ["quantum (paper angles, exact)", exact_quantum, "exact"],
        [f"quantum (Monte Carlo, n={rounds})", mc_quantum, "sampled"],
    ]
    table = format_table(
        ["strategy", "win probability", "method"],
        rows,
        title="CHSH game values (paper §2)",
        float_format="{:.6f}",
    )
    table += (
        f"\nAlice P(a=0) across inputs: "
        f"{', '.join(f'{m:.4f}' for m in marginals)} (paper: all 0.5)"
    )
    print_block("§2 CHSH values", table)

    assert abs(exact_quantum - CHSH_QUANTUM_VALUE) < 1e-9
    assert abs(exact_classical - 0.75) < 1e-12
    assert abs(mc_quantum - CHSH_QUANTUM_VALUE) < 0.03

    # Timed kernel: one exact quantum win-probability evaluation.
    benchmark(lambda: exact_win_probability(game, quantum))


def bench_chsh_optimality_margin(benchmark):
    """Quantum beats every deterministic classical strategy by >= 10 pts."""
    game = chsh_game()
    quantum_value = exact_win_probability(game, optimal_quantum_strategy())
    import itertools

    values = []
    for a in itertools.product((0, 1), repeat=2):
        for b in itertools.product((0, 1), repeat=2):
            values.append(game.deterministic_value(a, b))
    best_classical = max(values)

    table = format_table(
        ["quantity", "value"],
        [
            ["best deterministic classical", best_classical],
            ["quantum (Tsirelson)", quantum_value],
            ["advantage", quantum_value - best_classical],
            ["advantage (paper)", math.cos(math.pi / 8) ** 2 - 0.75],
        ],
        title="Quantum advantage margin over all 16 deterministic strategies",
        float_format="{:.6f}",
    )
    print_block("§2 CHSH optimality margin", table)
    assert quantum_value > best_classical

    benchmark(game.classical_value)
