"""Noise ablation (§3: "all quantum technologies operate with an error
margin, which system designs must account for").

Sweeps Werner-state fidelity: CHSH win probability degrades linearly,
the advantage threshold sits at F ~= 0.78, and the Fig 4 queue-length
benefit erodes with fidelity and vanishes below the threshold.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import FigureData, format_figure, format_table
from repro.games import CHSH_CLASSICAL_VALUE, chsh_win_probability_for_state
from repro.hardware import required_fidelity_for_advantage
from repro.lb import (
    CHSHPairedAssignment,
    RandomAssignment,
    run_timestep_simulation,
)
from repro.quantum import werner_state

FIDELITIES = (1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.6, 0.5)


def bench_chsh_vs_fidelity(benchmark):
    wins = [
        chsh_win_probability_for_state(werner_state(f)) for f in FIDELITIES
    ]
    threshold = required_fidelity_for_advantage()
    figure = FigureData(
        title="CHSH win probability vs Werner fidelity (paper angles)",
        x_label="Werner fidelity F",
        y_label="win probability",
    )
    figure.add("quantum", FIDELITIES, wins)
    figure.add("classical bound", FIDELITIES, [CHSH_CLASSICAL_VALUE] * len(FIDELITIES))
    body = format_figure(figure, float_format="{:.4f}")
    body += f"\nadvantage threshold: F > {threshold:.4f}"
    print_block("Ablation — CHSH vs entanglement fidelity", body)

    for f, win in zip(FIDELITIES, wins):
        if f > threshold + 0.01:
            assert win > CHSH_CLASSICAL_VALUE
        if f < threshold - 0.01:
            assert win < CHSH_CLASSICAL_VALUE

    benchmark(
        lambda: chsh_win_probability_for_state(werner_state(0.9))
    )


def bench_queueing_vs_fidelity(benchmark):
    """End-to-end: Fig 4 queue lengths at the knee as hardware degrades."""
    num_balancers, num_servers = 100, 80
    timesteps = scaled(600)
    classical = run_timestep_simulation(
        RandomAssignment(num_balancers, num_servers),
        timesteps=timesteps,
        seed=13,
    )
    sweep_fidelities = (1.0, 0.9, 0.8, 0.7)
    rows = []
    improvements = {}
    for fidelity in sweep_fidelities:
        policy = CHSHPairedAssignment(
            num_balancers, num_servers, state=werner_state(fidelity)
        )
        result = run_timestep_simulation(policy, timesteps=timesteps, seed=13)
        improvement = 1.0 - result.mean_queue_length / classical.mean_queue_length
        improvements[fidelity] = improvement
        rows.append([fidelity, result.mean_queue_length, improvement])

    body = format_table(
        ["Werner fidelity", "quantum queue", "improvement vs random"],
        rows,
        title=f"Fig 4 at load 1.25 vs entanglement fidelity "
        f"(classical random queue = {classical.mean_queue_length:.3f})",
    )
    print_block("Ablation — end-to-end noise sensitivity", body)

    assert improvements[1.0] > improvements[0.7], (
        "better hardware must give a larger systems-level benefit"
    )
    assert improvements[1.0] > 0.05

    policy = CHSHPairedAssignment(40, 32, state=werner_state(0.9))
    benchmark.pedantic(
        lambda: run_timestep_simulation(policy, timesteps=100, seed=1),
        rounds=3,
        iterations=1,
    )
