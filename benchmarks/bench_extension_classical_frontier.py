"""Extension: where exactly does quantum expand the Pareto frontier?

The paper's Fig 4 compares quantum pairs against *uniform random*
assignment. The classical colocation game has two distinct optimal
strategies with very different queueing value:

- split-always (never colocate; loses only the CC case) — the fairest
  game-theoretic baseline, but worthless for batching;
- same-type-colocate (perfect CC batching at the price of a guaranteed
  EE collision) — the strongest classical baseline for the queueing
  objective.

This bench maps all of them against the CHSH policy across loads. The
refined claim: quantum pairs dominate every classical policy at
moderate loads (around and below the classical knee), while in deep
overload the deterministic work-maximizer catches up — total work saved
is all that matters once every queue is long.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import FigureData, format_figure
from repro.lb import (
    CHSHPairedAssignment,
    ClassicalPairedAssignment,
    OmniscientAssignment,
    RandomAssignment,
    SameTypePairedAssignment,
    WeightedCHSHPairedAssignment,
    sweep_load,
)

LOADS = (0.75, 0.9, 1.0, 1.1, 1.25, 1.5)


def bench_classical_frontier(benchmark):
    num_balancers = 100
    timesteps = scaled(800)
    factories = {
        "random": RandomAssignment,
        "split-always pairs": ClassicalPairedAssignment,
        "same-type-colocate pairs": SameTypePairedAssignment,
        "quantum CHSH pairs": CHSHPairedAssignment,
        "quantum weighted pairs": WeightedCHSHPairedAssignment,
        "omniscient oracle (bound)": OmniscientAssignment,
    }
    figure = FigureData(
        title=f"Queue length vs load for the full classical frontier "
        f"(N={num_balancers}, {timesteps} steps)",
        x_label="load N/M",
        y_label="mean queue length",
    )
    curves = {}
    for name, factory in factories.items():
        points = sweep_load(
            factory,
            num_balancers=num_balancers,
            loads=LOADS,
            timesteps=timesteps,
            seed=31,
        )
        curves[name] = {
            nominal: p.result.mean_queue_length
            for nominal, p in zip(LOADS, points)
        }
        figure.add(
            name,
            [p.load for p in points],
            [p.result.mean_queue_length for p in points],
        )
    body = format_figure(figure)
    oracle = curves["omniscient oracle (bound)"]
    quantum_curve = curves["quantum CHSH pairs"]
    random_curve = curves["random"]
    gap_lines = []
    for load in (1.0, 1.1, 1.25):
        gap = random_curve[load] - oracle[load]
        closed = (random_curve[load] - quantum_curve[load]) / gap if gap > 0 else 0.0
        gap_lines.append(f"load {load}: {closed:.0%}")
    body += (
        "\nfinding: quantum dominates ALL legal (no-communication)"
        "\npolicies at moderate loads; the deterministic work-maximizer"
        "\n(same-type-colocate) catches up only in deep overload."
        "\nfraction of the full coordination gap (random -> omniscient)"
        "\nclosed by quantum, with zero communication: "
        + ", ".join(gap_lines)
    )
    print_block("Extension — classical frontier vs quantum", body)

    quantum = curves["quantum CHSH pairs"]
    same_type = curves["same-type-colocate pairs"]
    random_ = curves["random"]
    split = curves["split-always pairs"]
    # Moderate loads: quantum beats every legal classical policy.
    for load in (1.0, 1.1):
        assert quantum[load] < same_type[load]
        assert quantum[load] < random_[load]
        assert quantum[load] < split[load]
    # Deep overload: the work-maximizer is competitive (within 20%)
    # against *plain* CHSH...
    assert same_type[1.5] < quantum[1.5] * 1.2
    # ...but the utility-weighted quantum operators beat every legal
    # policy at all loads >= 1.0, including deep overload.
    weighted = curves["quantum weighted pairs"]
    for load in (1.0, 1.1, 1.25, 1.5):
        assert weighted[load] <= same_type[load] + 1e-9
        assert weighted[load] <= random_[load] + 1e-9
        assert weighted[load] <= split[load] + 1e-9
    # The oracle bound dominates everything (it cheats).
    oracle_curve = curves["omniscient oracle (bound)"]
    for load in LOADS:
        assert oracle_curve[load] <= quantum[load] + 1e-9

    policy = SameTypePairedAssignment(40, 32)
    from repro.lb import run_timestep_simulation

    benchmark.pedantic(
        lambda: run_timestep_simulation(policy, timesteps=100, seed=1),
        rounds=3,
        iterations=1,
    )
