"""§3 reproduction: hardware feasibility numbers.

Regenerates the engineering envelope the paper describes: SPDC pair
rates (1e4-1e7 pairs/s) with multi-photon falloff, QNIC storage windows
(16-160us demonstrated), and the end-to-end advantage budget across
fiber lengths and storage durations.
"""

from __future__ import annotations

from benchmarks._common import print_block
from repro.analysis import format_table
from repro.hardware import (
    QNIC,
    EntanglementDistributor,
    FiberChannel,
    SPDCSource,
    evaluate_budget,
    required_fidelity_for_advantage,
)


def bench_source_rates(benchmark):
    """Multi-photon rate falloff (paper: 'drops off sharply, often by
    several orders of magnitude')."""
    source = SPDCSource(pair_rate=1e6, fidelity=0.99, multiphoton_falloff=1e-3)
    rows = [
        [k, source.rate_for_parties(k), source.emission_interval(k)]
        for k in (2, 3, 4, 5)
    ]
    body = format_table(
        ["entangled photons", "rate (states/s)", "mean interval (s)"],
        rows,
        title="SPDC source: rate vs entangled-photon count",
        float_format="{:.3e}",
    )
    print_block("§3 — source rates", body)
    assert source.rate_for_parties(3) == source.pair_rate * 1e-3

    benchmark(lambda: source.rate_for_parties(4))


def bench_advantage_budget_matrix(benchmark):
    """End-to-end budget across fiber length and storage duration."""
    source = SPDCSource(pair_rate=1e6, fidelity=0.97)
    qnic = QNIC(storage_limit=160e-6, coherence_time=400e-6)
    rows = []
    for length_m in (10.0, 1000.0, 10_000.0):
        for storage in (0.0, 50e-6, 150e-6):
            fiber = FiberChannel(length_m=length_m)
            dist = EntanglementDistributor(source, fiber, fiber, qnic, qnic)
            budget = evaluate_budget(dist, storage_a=storage, storage_b=storage)
            rows.append(
                [
                    f"{length_m / 1000:.2f} km",
                    f"{storage * 1e6:.0f} us",
                    budget.bell_fidelity,
                    budget.chsh_win_probability,
                    "yes" if budget.has_advantage else "NO",
                    f"{budget.delivered_pair_rate:.3e}",
                ]
            )
    body = format_table(
        [
            "fiber (each arm)",
            "storage",
            "Bell fidelity",
            "CHSH win",
            "advantage",
            "pairs/s",
        ],
        rows,
        title="End-to-end advantage budget "
        f"(source F=0.97, QNIC T2=400us; threshold F={required_fidelity_for_advantage():.4f})",
    )
    print_block("§3 — hardware advantage budget", body)

    # Clean short-fiber zero-storage config must keep the advantage.
    assert rows[0][4] == "yes"
    # Long storage at 150us on a 400us-T2 memory burns most of the margin.
    worst = rows[-1]
    assert worst[3] < rows[0][3]

    fiber = FiberChannel(length_m=1000.0)
    dist = EntanglementDistributor(source, fiber, fiber, qnic, qnic)
    benchmark(lambda: evaluate_budget(dist, storage_a=50e-6, storage_b=50e-6))


def bench_storage_free_timing(benchmark):
    """Fig 2 timing: pre-shared qubits mean decisions need no round trip;
    delaying emission by the delivery latency removes storage entirely."""
    source = SPDCSource(pair_rate=1e6, fidelity=0.99)
    qnic = QNIC(storage_limit=100e-6, coherence_time=500e-6)
    rows = []
    for length_m in (100.0, 2000.0, 20_000.0):
        fiber = FiberChannel(length_m=length_m)
        dist = EntanglementDistributor(source, fiber, fiber, qnic, qnic)
        classical_rtt = 2 * fiber.transit_time
        rows.append(
            [
                f"{length_m / 1000:.1f} km",
                f"{dist.delivery_latency() * 1e6:.2f} us",
                f"{classical_rtt * 1e6:.2f} us",
                f"{dist.max_storage_free_lead_time() * 1e6:.2f} us",
                "0 us (pre-shared)",
            ]
        )
    body = format_table(
        [
            "distance",
            "qubit delivery latency",
            "classical coordination RTT",
            "lead time for zero storage",
            "decision latency",
        ],
        rows,
        title="Fig 2 timing: correlation without communication",
    )
    print_block("§3/Fig 2 — timing model", body)

    benchmark(
        lambda: EntanglementDistributor(
            source,
            FiberChannel(length_m=2000.0),
            FiberChannel(length_m=2000.0),
            qnic,
            qnic,
        ).delivery_latency()
    )
