"""Extension: utility-weighted colocation games.

The classical-frontier bench shows the queueing objective values the CC
case (work saving) far above the EE case (imbalance avoidance). This
bench reweights the colocation game accordingly and asks the Tsirelson
SDP how much advantage survives: the gap decays roughly like the
inverse CC weight but remains strictly positive — entanglement keeps
paying, just less, as colocation dominates the utility.
"""

from __future__ import annotations

from benchmarks._common import print_block
from repro.analysis import format_table
from repro.games.weighted import advantage_boundary_cc_weight, weighted_values

CC_WEIGHTS = (1.0, 2.0, 4.0, 8.0, 16.0)


def bench_weighted_advantage_decay(benchmark):
    rows = []
    advantages = []
    for cc in CC_WEIGHTS:
        value = weighted_values(0.5, cc_weight=cc)
        advantages.append(value.advantage)
        rows.append(
            [cc, value.classical_value, value.quantum_value, value.advantage]
        )
    boundary = advantage_boundary_cc_weight(0.5, threshold=0.02, hi=32.0)
    body = format_table(
        ["CC utility weight", "classical", "quantum", "advantage"],
        rows,
        title="Weighted colocation game (p=0.5): expected-utility values",
        float_format="{:.4f}",
    )
    body += (
        f"\nadvantage stays positive at every weight; it falls below 0.02 "
        f"at cc_weight ~ {boundary:.1f}"
        "\ninterpretation: the more the system's utility concentrates on "
        "CC batching, \nthe closer the deterministic colocate strategy "
        "gets to optimal — but never equal"
    )
    print_block("Extension — utility-weighted colocation games", body)

    assert advantages == sorted(advantages, reverse=True)
    assert all(a > 0 for a in advantages)
    assert 4.0 < boundary <= 32.0

    benchmark(lambda: weighted_values(0.5, cc_weight=4.0))
