"""Statistical backing for Fig 4: the knee-region gap across seeds.

A single seeded run could overstate the quantum benefit; this bench
repeats the load-1.1 comparison over independent seeds and reports
mean ± 95% CI for each policy. The intervals must separate.

Seeds fan out over ``REPRO_JOBS`` worker processes through
:class:`repro.exec.SweepRunner` (bit-identical to a serial run) and
land in the on-disk result cache, so a repeated run is pure cache hits.
"""

from __future__ import annotations

from functools import partial

from benchmarks._common import print_block, scaled, sweep_cache, sweep_jobs
from repro.analysis import format_table
from repro.analysis.sweep import compare_seeded_detailed
from repro.lb import (
    CHSHPairedAssignment,
    RandomAssignment,
    run_timestep_simulation,
)


def _mean_queue_metric(factory, n, m, timesteps, seed):
    """Module-level so seeds can run in worker processes and cache."""
    return run_timestep_simulation(
        factory(n, m), timesteps=timesteps, seed=seed
    ).mean_queue_length


def bench_fig4_seed_significance(benchmark):
    n, m = 100, 91  # load ~1.1, just past the classical knee
    timesteps = scaled(600, 200)
    seeds = list(range(1, scaled(8, 3) + 1))

    results, reports = compare_seeded_detailed(
        {
            "classical random": partial(
                _mean_queue_metric, RandomAssignment, n, m, timesteps
            ),
            "quantum CHSH": partial(
                _mean_queue_metric, CHSHPairedAssignment, n, m, timesteps
            ),
        },
        seeds,
        jobs=sweep_jobs(),
        cache=sweep_cache(),
    )
    rows = [
        [r.label, r.mean, r.low, r.high, len(r.samples)]
        for r in results.values()
    ]
    body = format_table(
        ["policy", "mean queue", "CI low", "CI high", "seeds"],
        rows,
        title=f"Load 1.1, N={n}, {timesteps} steps, 95% CIs across "
        f"{len(seeds)} seeds",
    )
    classical = results["classical random"]
    quantum = results["quantum CHSH"]
    separated = not classical.overlaps(quantum)
    body += (
        f"\nCIs separated: {separated} — the knee shift is not seed noise"
    )
    body += "\n\n" + "\n".join(r.summary() for r in reports.values())
    print_block("Fig 4 — seed significance", body)

    assert quantum.mean < classical.mean
    assert separated, "quantum/classical CIs overlap; increase timesteps"

    benchmark.pedantic(
        lambda: run_timestep_simulation(
            RandomAssignment(50, 45), timesteps=100, seed=1
        ),
        rounds=3,
        iterations=1,
    )
