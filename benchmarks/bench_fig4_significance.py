"""Statistical backing for Fig 4: the knee-region gap across seeds.

A single seeded run could overstate the quantum benefit; this bench
repeats the load-1.1 comparison over independent seeds and reports
mean ± 95% CI for each policy. The intervals must separate.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.analysis.sweep import compare_seeded
from repro.lb import (
    CHSHPairedAssignment,
    RandomAssignment,
    run_timestep_simulation,
)


def bench_fig4_seed_significance(benchmark):
    n, m = 100, 91  # load ~1.1, just past the classical knee
    timesteps = scaled(600)
    seeds = list(range(1, scaled(8) + 1))

    def classical_metric(seed: int) -> float:
        return run_timestep_simulation(
            RandomAssignment(n, m), timesteps=timesteps, seed=seed
        ).mean_queue_length

    def quantum_metric(seed: int) -> float:
        return run_timestep_simulation(
            CHSHPairedAssignment(n, m), timesteps=timesteps, seed=seed
        ).mean_queue_length

    results = compare_seeded(
        {"classical random": classical_metric, "quantum CHSH": quantum_metric},
        seeds,
    )
    rows = [
        [r.label, r.mean, r.low, r.high, len(r.samples)]
        for r in results.values()
    ]
    body = format_table(
        ["policy", "mean queue", "CI low", "CI high", "seeds"],
        rows,
        title=f"Load 1.1, N={n}, {timesteps} steps, 95% CIs across "
        f"{len(seeds)} seeds",
    )
    classical = results["classical random"]
    quantum = results["quantum CHSH"]
    separated = not classical.overlaps(quantum)
    body += (
        f"\nCIs separated: {separated} — the knee shift is not seed noise"
    )
    print_block("Fig 4 — seed significance", body)

    assert quantum.mean < classical.mean
    assert separated, "quantum/classical CIs overlap; increase timesteps"

    benchmark.pedantic(
        lambda: run_timestep_simulation(
            RandomAssignment(50, 45), timesteps=100, seed=1
        ),
        rounds=3,
        iterations=1,
    )
