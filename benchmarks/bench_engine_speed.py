"""Engine speed: the vectorized Fig 4 engine vs the reference loop.

Times both engines on the ISSUE 2 target point (N=100 balancers, M=50
servers, 2000 timesteps, CHSH-paired policy — the hottest configuration
every load sweep, significance run, and ablation hits) plus a classical
point, and asserts the vectorized engine wins. At full scale
(``REPRO_BENCH_SCALE >= 1``) the requirement is the ISSUE's ≥5×; at
smoke scale it degrades to "not slower", which is what the CI perf gate
runs.

Each run also cross-checks the engines agree on the physics: identical
results for the exact-parity random policy and same-ballpark mean queue
lengths for CHSH.

The run also times the observability layer itself: the vectorized CHSH
point with telemetry on (the default registry) vs off
(:func:`repro.obs.disabled`), gated at <=5% overhead and recorded in the
trajectory under ``telemetry_overhead``.

The streaming scale-up section runs the chunked engine at the shared
scale ladder's ``stream_*`` point (``production``: N=10^4 balancers,
10^6 timesteps) on every importable backend, gates the peak sliding
window below :data:`WINDOW_BYTES_BUDGET`, and — when numba is present —
gates its kernels at >=2x over the NumPy reference with bit-identical
results.

A trajectory file (``BENCH_engine.json``, override via
``REPRO_BENCH_ENGINE_JSON``) records per-repeat wall-clock times and
speedups for trend tracking, tagged with the resolved backend; CI
uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks._common import scale_tier, ladder, print_block, scaled
from repro.analysis import format_table
from repro.backend import numba_available, resolve_backend_name
from repro.lb import (
    CHSHPairedAssignment,
    RandomAssignment,
    run_timestep_simulation,
)
from repro.lb.engine import resolve_chunk_steps
from repro.obs import disabled
from repro.obs.metrics import capture

REPEATS = 3

#: Peak sliding-window ceiling for the streaming point (acceptance
#: criterion: the production point must complete in bounded memory, not
#: the O(M x timesteps) of full materialization).
WINDOW_BYTES_BUDGET = 256 * 1024 * 1024

#: Required numba speedup over the NumPy kernels on the streaming
#: point, gated whenever numba is importable and the tier is not smoke.
NUMBA_SPEEDUP_GATE = 2.0

#: Repeats for the telemetry on/off comparison — more than the engine
#: race because the effect being measured is a few percent at most.
OVERHEAD_REPEATS = 7

#: Instrumentation overhead budget (acceptance criterion).
OVERHEAD_BUDGET_PCT = 5.0


def _time_engine(policy_factory, *, n, m, timesteps, engine):
    """Best-of-REPEATS wall clock plus the (deterministic) result."""
    times = []
    result = None
    for _ in range(REPEATS):
        policy = policy_factory(n, m)
        start = time.perf_counter()
        result = run_timestep_simulation(
            policy, timesteps=timesteps, seed=1, engine=engine
        )
        times.append(time.perf_counter() - start)
    return times, result


def _time_telemetry(*, timesteps, telemetry):
    """Time the vectorized CHSH point with the registry on or off."""
    times = []
    for _ in range(OVERHEAD_REPEATS):
        policy = CHSHPairedAssignment(100, 50)
        if telemetry:
            start = time.perf_counter()
            run_timestep_simulation(
                policy, timesteps=timesteps, seed=1, engine="vectorized"
            )
            times.append(time.perf_counter() - start)
        else:
            with disabled():
                start = time.perf_counter()
                run_timestep_simulation(
                    policy, timesteps=timesteps, seed=1, engine="vectorized"
                )
                times.append(time.perf_counter() - start)
    return times


def bench_engine_speed(benchmark):
    timesteps = scaled(2000, 120)
    full_scale = timesteps >= 2000
    points = [
        ("quantum CHSH", CHSHPairedAssignment, 100, 50),
        ("classical random", RandomAssignment, 100, 50),
    ]

    rows = []
    trajectory = {
        "benchmark": "engine_speed",
        "timesteps": timesteps,
        "repeats": REPEATS,
        "full_scale": full_scale,
        "points": [],
    }
    speedups = {}
    for name, factory, n, m in points:
        ref_times, ref_result = _time_engine(
            factory, n=n, m=m, timesteps=timesteps, engine="reference"
        )
        vec_times, vec_result = _time_engine(
            factory, n=n, m=m, timesteps=timesteps, engine="vectorized"
        )
        speedup = min(ref_times) / min(vec_times)
        speedups[name] = speedup
        rows.append(
            [name, min(ref_times), min(vec_times), speedup]
        )
        trajectory["points"].append(
            {
                "policy": name,
                "num_balancers": n,
                "num_servers": m,
                "reference_seconds": ref_times,
                "vectorized_seconds": vec_times,
                "speedup": speedup,
                "reference_mean_queue": ref_result.mean_queue_length,
                "vectorized_mean_queue": vec_result.mean_queue_length,
            }
        )
        # Physics cross-check: same model, whichever engine ran it.
        if factory is RandomAssignment:
            assert ref_result == vec_result, "exact-parity policy diverged"
        else:
            drift = abs(
                vec_result.mean_queue_length - ref_result.mean_queue_length
            )
            assert drift < max(5.0, 0.2 * ref_result.mean_queue_length), (
                "engines disagree on mean queue length"
            )

    # --- telemetry overhead: vectorized CHSH, registry on vs off ------
    on_times = _time_telemetry(timesteps=timesteps, telemetry=True)
    off_times = _time_telemetry(timesteps=timesteps, telemetry=False)
    overhead_pct = (min(on_times) / min(off_times) - 1.0) * 100.0
    trajectory["telemetry_overhead"] = {
        "policy": "quantum CHSH",
        "engine": "vectorized",
        "num_balancers": 100,
        "num_servers": 50,
        "repeats": OVERHEAD_REPEATS,
        "telemetry_on_seconds": on_times,
        "telemetry_off_seconds": off_times,
        "overhead_pct": overhead_pct,
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }

    # --- streaming scale-up: the chunked engine at production size ----
    # The reference loop is not raced here: at N=10^4 it would take
    # hours. The race is NumPy kernels vs numba kernels (when
    # importable), and the gates are (a) the run completes inside the
    # sliding-window memory budget and (b) numba wins by >=2x.
    tier = scale_tier()
    stream_n = ladder("stream_balancers")
    stream_m = ladder("stream_servers")
    stream_steps = ladder("stream_timesteps")
    stream_chunk = resolve_chunk_steps(None, stream_steps, stream_n, stream_m)
    backends = ["numpy"] + (["numba"] if numba_available() else [])
    stream_rows = []
    stream_points = []
    stream_results = {}
    for backend_name in backends:
        # Warm up outside the timer so numba's one-off JIT compilation
        # does not count against the kernel.
        run_timestep_simulation(
            RandomAssignment(64, 80), timesteps=64, seed=1,
            engine="vectorized", backend=backend_name,
        )
        with capture() as registry:
            policy = RandomAssignment(stream_n, stream_m)
            start = time.perf_counter()
            result = run_timestep_simulation(
                policy, timesteps=stream_steps, seed=1,
                engine="vectorized", backend=backend_name,
            )
            wall = time.perf_counter() - start
            snapshot = registry.snapshot()
        window_bytes = snapshot["gauges"]["engine.window_bytes"]
        chunks = snapshot["counters"]["engine.vectorized.chunks"]
        stream_results[backend_name] = result
        stream_rows.append(
            [backend_name, wall, stream_steps / wall, window_bytes / 2**20]
        )
        stream_points.append(
            {
                "backend": backend_name,
                "num_balancers": stream_n,
                "num_servers": stream_m,
                "timesteps": stream_steps,
                "chunk_steps": stream_chunk,
                "chunks": chunks,
                "seconds": wall,
                "steps_per_sec": stream_steps / wall,
                "peak_window_bytes": int(window_bytes),
                "mean_queue_length": result.mean_queue_length,
            }
        )
        assert window_bytes <= WINDOW_BYTES_BUDGET, (
            f"{backend_name} streaming window peaked at "
            f"{window_bytes / 2**20:.0f} MiB, over the "
            f"{WINDOW_BYTES_BUDGET / 2**20:.0f} MiB budget"
        )
        full_bytes = 2 * stream_m * stream_steps * np.dtype(np.int32).itemsize
        if stream_steps > stream_chunk:
            assert window_bytes < full_bytes / 4, (
                "sliding window did not stay below full materialization"
            )
    if len(backends) == 2:
        assert stream_results["numpy"] == stream_results["numba"], (
            "backends diverged on the exact-parity streaming point"
        )
        numba_speedup = stream_points[0]["seconds"] / stream_points[1]["seconds"]
        stream_points[1]["speedup_vs_numpy"] = numba_speedup
        if tier != "smoke":
            assert numba_speedup >= NUMBA_SPEEDUP_GATE, (
                f"numba kernels {numba_speedup:.2f}x vs numpy, below the "
                f"{NUMBA_SPEEDUP_GATE:.0f}x gate"
            )
    trajectory["backend"] = resolve_backend_name()
    trajectory["streaming"] = {
        "tier": tier,
        "points": stream_points,
    }

    body = format_table(
        ["point", "reference s", "vectorized s", "speedup"],
        rows,
        float_format="{:.4f}",
    )
    body += (
        f"\n\ntimesteps={timesteps} (REPRO_BENCH_SCALE), best of "
        f"{REPEATS}; target: >=5x at full scale on the CHSH point"
        f"\ntelemetry overhead: {overhead_pct:+.2f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.0f}%, best of {OVERHEAD_REPEATS})"
    )
    body += "\n\nstreaming scale-up (tier '" + tier + "'):\n"
    body += format_table(
        ["backend", "seconds", "steps/s", "window MiB"],
        stream_rows,
        float_format="{:.2f}",
    )
    body += (
        f"\nN={stream_n} balancers, M={stream_m} servers, "
        f"{stream_steps} timesteps in {stream_chunk}-step chunks"
    )
    print_block("Engine speed — vectorized vs reference", body)

    out_path = os.environ.get("REPRO_BENCH_ENGINE_JSON", "BENCH_engine.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    for name, speedup in speedups.items():
        assert speedup >= 1.0, (
            f"vectorized engine slower than reference on {name}: {speedup:.2f}x"
        )
    if full_scale:
        assert speedups["quantum CHSH"] >= 5.0, (
            f"ISSUE 2 target missed: {speedups['quantum CHSH']:.2f}x < 5x"
        )
        # At smoke scale a single run is a few milliseconds, so timer
        # jitter swamps the few-microsecond instrumentation cost; only
        # gate where the signal is measurable.
        assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
            f"telemetry overhead {overhead_pct:.2f}% exceeds "
            f"{OVERHEAD_BUDGET_PCT:.0f}% budget"
        )

    policy = CHSHPairedAssignment(100, 50)
    benchmark.pedantic(
        lambda: run_timestep_simulation(
            policy, timesteps=min(timesteps, 500), seed=1, engine="vectorized"
        ),
        rounds=3,
        iterations=1,
    )
