"""Engine speed: the vectorized Fig 4 engine vs the reference loop.

Times both engines on the ISSUE 2 target point (N=100 balancers, M=50
servers, 2000 timesteps, CHSH-paired policy — the hottest configuration
every load sweep, significance run, and ablation hits) plus a classical
point, and asserts the vectorized engine wins. At full scale
(``REPRO_BENCH_SCALE >= 1``) the requirement is the ISSUE's ≥5×; at
smoke scale it degrades to "not slower", which is what the CI perf gate
runs.

Each run also cross-checks the engines agree on the physics: identical
results for the exact-parity random policy and same-ballpark mean queue
lengths for CHSH.

The run also times the observability layer itself: the vectorized CHSH
point with telemetry on (the default registry) vs off
(:func:`repro.obs.disabled`), gated at <=5% overhead and recorded in the
trajectory under ``telemetry_overhead``.

A trajectory file (``BENCH_engine.json``, override via
``REPRO_BENCH_ENGINE_JSON``) records per-repeat wall-clock times and
speedups for trend tracking; CI uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.lb import (
    CHSHPairedAssignment,
    RandomAssignment,
    run_timestep_simulation,
)
from repro.obs import disabled

REPEATS = 3

#: Repeats for the telemetry on/off comparison — more than the engine
#: race because the effect being measured is a few percent at most.
OVERHEAD_REPEATS = 7

#: Instrumentation overhead budget (acceptance criterion).
OVERHEAD_BUDGET_PCT = 5.0


def _time_engine(policy_factory, *, n, m, timesteps, engine):
    """Best-of-REPEATS wall clock plus the (deterministic) result."""
    times = []
    result = None
    for _ in range(REPEATS):
        policy = policy_factory(n, m)
        start = time.perf_counter()
        result = run_timestep_simulation(
            policy, timesteps=timesteps, seed=1, engine=engine
        )
        times.append(time.perf_counter() - start)
    return times, result


def _time_telemetry(*, timesteps, telemetry):
    """Time the vectorized CHSH point with the registry on or off."""
    times = []
    for _ in range(OVERHEAD_REPEATS):
        policy = CHSHPairedAssignment(100, 50)
        if telemetry:
            start = time.perf_counter()
            run_timestep_simulation(
                policy, timesteps=timesteps, seed=1, engine="vectorized"
            )
            times.append(time.perf_counter() - start)
        else:
            with disabled():
                start = time.perf_counter()
                run_timestep_simulation(
                    policy, timesteps=timesteps, seed=1, engine="vectorized"
                )
                times.append(time.perf_counter() - start)
    return times


def bench_engine_speed(benchmark):
    timesteps = scaled(2000, 120)
    full_scale = timesteps >= 2000
    points = [
        ("quantum CHSH", CHSHPairedAssignment, 100, 50),
        ("classical random", RandomAssignment, 100, 50),
    ]

    rows = []
    trajectory = {
        "benchmark": "engine_speed",
        "timesteps": timesteps,
        "repeats": REPEATS,
        "full_scale": full_scale,
        "points": [],
    }
    speedups = {}
    for name, factory, n, m in points:
        ref_times, ref_result = _time_engine(
            factory, n=n, m=m, timesteps=timesteps, engine="reference"
        )
        vec_times, vec_result = _time_engine(
            factory, n=n, m=m, timesteps=timesteps, engine="vectorized"
        )
        speedup = min(ref_times) / min(vec_times)
        speedups[name] = speedup
        rows.append(
            [name, min(ref_times), min(vec_times), speedup]
        )
        trajectory["points"].append(
            {
                "policy": name,
                "num_balancers": n,
                "num_servers": m,
                "reference_seconds": ref_times,
                "vectorized_seconds": vec_times,
                "speedup": speedup,
                "reference_mean_queue": ref_result.mean_queue_length,
                "vectorized_mean_queue": vec_result.mean_queue_length,
            }
        )
        # Physics cross-check: same model, whichever engine ran it.
        if factory is RandomAssignment:
            assert ref_result == vec_result, "exact-parity policy diverged"
        else:
            drift = abs(
                vec_result.mean_queue_length - ref_result.mean_queue_length
            )
            assert drift < max(5.0, 0.2 * ref_result.mean_queue_length), (
                "engines disagree on mean queue length"
            )

    # --- telemetry overhead: vectorized CHSH, registry on vs off ------
    on_times = _time_telemetry(timesteps=timesteps, telemetry=True)
    off_times = _time_telemetry(timesteps=timesteps, telemetry=False)
    overhead_pct = (min(on_times) / min(off_times) - 1.0) * 100.0
    trajectory["telemetry_overhead"] = {
        "policy": "quantum CHSH",
        "engine": "vectorized",
        "num_balancers": 100,
        "num_servers": 50,
        "repeats": OVERHEAD_REPEATS,
        "telemetry_on_seconds": on_times,
        "telemetry_off_seconds": off_times,
        "overhead_pct": overhead_pct,
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }

    body = format_table(
        ["point", "reference s", "vectorized s", "speedup"],
        rows,
        float_format="{:.4f}",
    )
    body += (
        f"\n\ntimesteps={timesteps} (REPRO_BENCH_SCALE), best of "
        f"{REPEATS}; target: >=5x at full scale on the CHSH point"
        f"\ntelemetry overhead: {overhead_pct:+.2f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.0f}%, best of {OVERHEAD_REPEATS})"
    )
    print_block("Engine speed — vectorized vs reference", body)

    out_path = os.environ.get("REPRO_BENCH_ENGINE_JSON", "BENCH_engine.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    for name, speedup in speedups.items():
        assert speedup >= 1.0, (
            f"vectorized engine slower than reference on {name}: {speedup:.2f}x"
        )
    if full_scale:
        assert speedups["quantum CHSH"] >= 5.0, (
            f"ISSUE 2 target missed: {speedups['quantum CHSH']:.2f}x < 5x"
        )
        # At smoke scale a single run is a few milliseconds, so timer
        # jitter swamps the few-microsecond instrumentation cost; only
        # gate where the signal is measurable.
        assert overhead_pct <= OVERHEAD_BUDGET_PCT, (
            f"telemetry overhead {overhead_pct:.2f}% exceeds "
            f"{OVERHEAD_BUDGET_PCT:.0f}% budget"
        )

    policy = CHSHPairedAssignment(100, 50)
    benchmark.pedantic(
        lambda: run_timestep_simulation(
            policy, timesteps=min(timesteps, 500), seed=1, engine="vectorized"
        ),
        rounds=3,
        iterations=1,
    )
