"""Fig 3 reproduction: probability a random 5-vertex XOR game has a
quantum advantage, vs the probability that an edge is exclusive.

Paper claims (Fig 3 + §4.1): the curve vanishes at the extremes, most
randomly labeled graphs in the middle exhibit a quantum advantage, and
the advantage probability increases with the number of vertices.

Each curve point is an independent (config, seed) sweep point executed
through :class:`repro.exec.SweepRunner`: its RNG derives from the root
seed and the point's parameters via :class:`repro.sim.RandomStreams`,
so points are order-independent and parallel runs match serial ones
bit-for-bit.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from benchmarks._common import (
    scale_tier,
    ladder,
    print_block,
    scaled,
    sweep_cache,
    sweep_jobs,
)
from repro.analysis import FigureData, format_figure, format_table
from repro.backend import resolve_backend_name
from repro.exec import SweepRunner
from repro.games import (
    advantage_decisions,
    advantage_probability,
    random_affinity_graph,
    sample_game_batch,
    screen_advantage_batch,
    screen_game_batch,
    xor_game_from_graph,
    xor_quantum_value,
)
from repro.sim import RandomStreams


def _advantage_point(config, seed):
    """One Fig 3 point: advantage probability at one (vertices, p)."""
    rng = RandomStreams(seed).stream(
        f"fig3:v={config['vertices']}:p={config['p']}"
    )
    return advantage_probability(
        config["vertices"], config["p"], config["games"], rng
    )


def bench_fig3_advantage_curve(benchmark):
    games_per_point = scaled(40, 5)
    p_values = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    runner = SweepRunner(
        _advantage_point,
        jobs=sweep_jobs(),
        cache=sweep_cache(),
        label="fig3-advantage",
    )
    report = runner.run(
        [
            ({"vertices": 5, "p": p, "games": games_per_point}, 42)
            for p in p_values
        ]
    )
    probabilities = report.values()

    figure = FigureData(
        title=f"Fig 3: P(quantum advantage), 5-vertex graphs, "
        f"{games_per_point} games/point",
        x_label="P(edge exclusive)",
        y_label="P(quantum advantage)",
    )
    figure.add("5 vertices", p_values, probabilities)
    body = format_figure(figure) + "\n\n" + report.summary()
    print_block("Fig 3 — XOR-game advantage probability", body)

    # Shape assertions from the paper's figure.
    assert probabilities[0] == 0.0, "all-colocate games are classical-perfect"
    assert max(probabilities[3:8]) > 0.4, "most mid-range graphs show advantage"

    # Timed kernel: one full classical+quantum value computation.
    kernel_rng = np.random.default_rng(7)
    graph = random_affinity_graph(5, 0.5, kernel_rng)
    game = xor_game_from_graph(graph)
    benchmark(lambda: xor_quantum_value(game))


def bench_fig3_vertex_scaling(benchmark):
    """Paper: 'the probability of achieving a quantum advantage increases
    with the number of vertices'."""
    games_per_point = scaled(30, 5)
    p_exclusive = 0.5
    sizes = [3, 4, 5, 6]
    runner = SweepRunner(
        _advantage_point,
        jobs=sweep_jobs(),
        cache=sweep_cache(),
        label="fig3-vertex-scaling",
    )
    report = runner.run(
        [
            ({"vertices": n, "p": p_exclusive, "games": games_per_point}, 11)
            for n in sizes
        ]
    )
    probabilities = report.values()
    figure = FigureData(
        title=f"Fig 3 inset: advantage probability vs vertex count "
        f"(p_exclusive={p_exclusive}, {games_per_point} games/point)",
        x_label="vertices",
        y_label="P(quantum advantage)",
    )
    figure.add(f"p={p_exclusive}", [float(n) for n in sizes], probabilities)
    body = format_figure(figure) + "\n\n" + report.summary()
    print_block("Fig 3 — vertex-count scaling", body)

    assert probabilities[-1] >= probabilities[0], (
        "advantage probability should not shrink with more vertices"
    )

    kernel_rng = np.random.default_rng(13)
    benchmark(
        lambda: advantage_probability(4, 0.5, 2, kernel_rng)
    )


def bench_fig3_batched_cascade(benchmark):
    """Race the screening cascade against the per-game reference loop.

    Every point samples identical games for both methods (same
    :class:`RandomStreams` substream) and the per-game verdict arrays
    must match exactly — the speedup only counts if the decisions are
    bit-identical. At full scale (200 games/point) the cascade must win
    by >=10x; at smoke scale the gate degrades to "not slower".

    A trajectory file (``BENCH_fig3.json``, override via
    ``REPRO_BENCH_FIG3_JSON``) records per-point times, speedups, and
    cascade-stage hit counts; CI uploads it next to
    ``BENCH_engine.json``.
    """
    games = scaled(200, 10)
    full_scale = games >= 200
    p_values = [0.0, 0.15, 0.3, 0.5, 0.7, 0.85, 1.0]

    def point_rng(p):
        return RandomStreams(42).stream(f"fig3:v=5:p={p}")

    rows = []
    trajectory = {
        "benchmark": "fig3_batched_cascade",
        "vertices": 5,
        "games_per_point": games,
        "full_scale": full_scale,
        "points": [],
    }
    stage_totals = {"perfect": 0, "lower": 0, "upper": 0, "sdp": 0}
    total_reference = 0.0
    total_batched = 0.0
    for p in p_values:
        start = time.perf_counter()
        reference = advantage_decisions(
            5, p, games, point_rng(p), method="reference"
        )
        reference_seconds = time.perf_counter() - start

        start = time.perf_counter()
        report = screen_advantage_batch(5, p, games, point_rng(p))
        batched_seconds = time.perf_counter() - start

        assert np.array_equal(report.verdicts, reference), (
            f"batched cascade changed a verdict at p={p}"
        )
        speedup = reference_seconds / batched_seconds
        total_reference += reference_seconds
        total_batched += batched_seconds
        counts = report.stage_counts()
        for stage, count in counts.items():
            stage_totals[stage] += count
        rows.append(
            [
                p,
                report.advantage_probability,
                reference_seconds,
                batched_seconds,
                speedup,
                counts["sdp"],
            ]
        )
        trajectory["points"].append(
            {
                "p_exclusive": p,
                "advantage_probability": report.advantage_probability,
                "reference_seconds": reference_seconds,
                "batched_seconds": batched_seconds,
                "speedup": speedup,
                "stage_counts": counts,
            }
        )

    total_games = games * len(p_values)
    overall_speedup = total_reference / total_batched
    screened = total_games - stage_totals["sdp"]
    cascade_efficiency = screened / total_games
    trajectory["total_reference_seconds"] = total_reference
    trajectory["total_batched_seconds"] = total_batched
    trajectory["speedup"] = overall_speedup
    trajectory["stage_totals"] = stage_totals
    trajectory["cascade_efficiency"] = cascade_efficiency

    # --- scale-up: n=6..8, where ADMM escalations actually happen -----
    # No reference race here — the per-game loop would pay a full SDP
    # per game at n=8. Cross-backend verdict agreement at these sizes is
    # covered by tests/backend/test_parity.py; the gate here is that the
    # per-n screen budget still escalates a nonzero share of games to
    # the batched ADMM stage (the cascade is screening, not guessing).
    tier = scale_tier()
    scale_sizes = ladder("fig3_sizes")
    scale_games = ladder("fig3_games")
    scale_rows = []
    scale_points = []
    for vertices in scale_sizes:
        rng = RandomStreams(42).stream(f"fig3:v={vertices}:p=0.5")
        start = time.perf_counter()
        batch = sample_game_batch(vertices, 0.5, scale_games, rng)
        report = screen_game_batch(batch)
        seconds = time.perf_counter() - start
        counts = report.stage_counts()
        scale_rows.append(
            [
                vertices,
                report.advantage_probability,
                seconds,
                scale_games / seconds,
                counts["sdp"],
            ]
        )
        scale_points.append(
            {
                "vertices": vertices,
                "p_exclusive": 0.5,
                "games": scale_games,
                "advantage_probability": report.advantage_probability,
                "seconds": seconds,
                "stage_counts": counts,
                "sdp_escalations": counts["sdp"],
            }
        )
        if tier != "smoke":
            assert counts["sdp"] > 0, (
                f"no SDP escalations at n={vertices}: the screen budget "
                "is deciding everything without ADMM, so the scale-up "
                "point no longer exercises the hot kernel"
            )
    trajectory["backend"] = resolve_backend_name()
    trajectory["scale_up"] = {"tier": tier, "points": scale_points}

    body = format_table(
        ["p", "P(adv)", "reference s", "batched s", "speedup", "to SDP"],
        rows,
        float_format="{:.4f}",
    )
    body += (
        f"\n\n{games} games/point (REPRO_BENCH_SCALE); overall speedup "
        f"{overall_speedup:.1f}x, target >=10x at full scale"
        f"\ncascade efficiency: {cascade_efficiency:.1%} decided without "
        f"an SDP ({stage_totals['sdp']}/{total_games} escalated); stages "
        f"perfect={stage_totals['perfect']} lower={stage_totals['lower']} "
        f"upper={stage_totals['upper']} sdp={stage_totals['sdp']}"
        f"\nper-game decisions: bit-identical to the reference on all "
        f"{total_games} games"
    )
    body += f"\n\nscale-up at p=0.5 (tier '{tier}'):\n"
    body += format_table(
        ["n", "P(adv)", "seconds", "games/s", "to SDP"],
        scale_rows,
        float_format="{:.4f}",
    )
    print_block("Fig 3 — batched cascade vs reference pipeline", body)

    out_path = os.environ.get("REPRO_BENCH_FIG3_JSON", "BENCH_fig3.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    required = 10.0 if full_scale else 1.0
    assert overall_speedup >= required, (
        f"cascade speedup {overall_speedup:.2f}x below the "
        f"{required:.0f}x gate"
    )

    # Timed kernel: one mid-curve batched screen.
    benchmark(
        lambda: screen_advantage_batch(
            5, 0.5, 10, np.random.default_rng(5)
        )
    )
