"""Fig 3 reproduction: probability a random 5-vertex XOR game has a
quantum advantage, vs the probability that an edge is exclusive.

Paper claims (Fig 3 + §4.1): the curve vanishes at the extremes, most
randomly labeled graphs in the middle exhibit a quantum advantage, and
the advantage probability increases with the number of vertices.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import print_block, scaled
from repro.analysis import FigureData, format_figure
from repro.games import (
    advantage_probability,
    random_affinity_graph,
    xor_game_from_graph,
    xor_quantum_value,
)


def bench_fig3_advantage_curve(benchmark):
    games_per_point = scaled(40)
    p_values = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    rng = np.random.default_rng(42)
    probabilities = [
        advantage_probability(5, p, games_per_point, rng)
        for p in p_values
    ]

    figure = FigureData(
        title=f"Fig 3: P(quantum advantage), 5-vertex graphs, "
        f"{games_per_point} games/point",
        x_label="P(edge exclusive)",
        y_label="P(quantum advantage)",
    )
    figure.add("5 vertices", p_values, probabilities)
    print_block("Fig 3 — XOR-game advantage probability", format_figure(figure))

    # Shape assertions from the paper's figure.
    assert probabilities[0] == 0.0, "all-colocate games are classical-perfect"
    assert max(probabilities[3:8]) > 0.4, "most mid-range graphs show advantage"

    # Timed kernel: one full classical+quantum value computation.
    kernel_rng = np.random.default_rng(7)
    graph = random_affinity_graph(5, 0.5, kernel_rng)
    game = xor_game_from_graph(graph)
    benchmark(lambda: xor_quantum_value(game))


def bench_fig3_vertex_scaling(benchmark):
    """Paper: 'the probability of achieving a quantum advantage increases
    with the number of vertices'."""
    games_per_point = scaled(30)
    p_exclusive = 0.5
    sizes = [3, 4, 5, 6]
    rng = np.random.default_rng(11)
    probabilities = [
        advantage_probability(n, p_exclusive, games_per_point, rng)
        for n in sizes
    ]
    figure = FigureData(
        title=f"Fig 3 inset: advantage probability vs vertex count "
        f"(p_exclusive={p_exclusive}, {games_per_point} games/point)",
        x_label="vertices",
        y_label="P(quantum advantage)",
    )
    figure.add(f"p={p_exclusive}", [float(n) for n in sizes], probabilities)
    print_block("Fig 3 — vertex-count scaling", format_figure(figure))

    assert probabilities[-1] >= probabilities[0], (
        "advantage probability should not shrink with more vertices"
    )

    kernel_rng = np.random.default_rng(13)
    benchmark(
        lambda: advantage_probability(4, 0.5, 2, kernel_rng)
    )
