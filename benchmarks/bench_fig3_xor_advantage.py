"""Fig 3 reproduction: probability a random 5-vertex XOR game has a
quantum advantage, vs the probability that an edge is exclusive.

Paper claims (Fig 3 + §4.1): the curve vanishes at the extremes, most
randomly labeled graphs in the middle exhibit a quantum advantage, and
the advantage probability increases with the number of vertices.

Each curve point is an independent (config, seed) sweep point executed
through :class:`repro.exec.SweepRunner`: its RNG derives from the root
seed and the point's parameters via :class:`repro.sim.RandomStreams`,
so points are order-independent and parallel runs match serial ones
bit-for-bit.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled, sweep_cache, sweep_jobs
from repro.analysis import FigureData, format_figure
from repro.exec import SweepRunner
from repro.games import (
    advantage_probability,
    random_affinity_graph,
    xor_game_from_graph,
    xor_quantum_value,
)
from repro.sim import RandomStreams


def _advantage_point(config, seed):
    """One Fig 3 point: advantage probability at one (vertices, p)."""
    rng = RandomStreams(seed).stream(
        f"fig3:v={config['vertices']}:p={config['p']}"
    )
    return advantage_probability(
        config["vertices"], config["p"], config["games"], rng
    )


def bench_fig3_advantage_curve(benchmark):
    games_per_point = scaled(40, 5)
    p_values = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    runner = SweepRunner(
        _advantage_point,
        jobs=sweep_jobs(),
        cache=sweep_cache(),
        label="fig3-advantage",
    )
    report = runner.run(
        [
            ({"vertices": 5, "p": p, "games": games_per_point}, 42)
            for p in p_values
        ]
    )
    probabilities = report.values()

    figure = FigureData(
        title=f"Fig 3: P(quantum advantage), 5-vertex graphs, "
        f"{games_per_point} games/point",
        x_label="P(edge exclusive)",
        y_label="P(quantum advantage)",
    )
    figure.add("5 vertices", p_values, probabilities)
    body = format_figure(figure) + "\n\n" + report.summary()
    print_block("Fig 3 — XOR-game advantage probability", body)

    # Shape assertions from the paper's figure.
    assert probabilities[0] == 0.0, "all-colocate games are classical-perfect"
    assert max(probabilities[3:8]) > 0.4, "most mid-range graphs show advantage"

    # Timed kernel: one full classical+quantum value computation.
    import numpy as np

    kernel_rng = np.random.default_rng(7)
    graph = random_affinity_graph(5, 0.5, kernel_rng)
    game = xor_game_from_graph(graph)
    benchmark(lambda: xor_quantum_value(game))


def bench_fig3_vertex_scaling(benchmark):
    """Paper: 'the probability of achieving a quantum advantage increases
    with the number of vertices'."""
    games_per_point = scaled(30, 5)
    p_exclusive = 0.5
    sizes = [3, 4, 5, 6]
    runner = SweepRunner(
        _advantage_point,
        jobs=sweep_jobs(),
        cache=sweep_cache(),
        label="fig3-vertex-scaling",
    )
    report = runner.run(
        [
            ({"vertices": n, "p": p_exclusive, "games": games_per_point}, 11)
            for n in sizes
        ]
    )
    probabilities = report.values()
    figure = FigureData(
        title=f"Fig 3 inset: advantage probability vs vertex count "
        f"(p_exclusive={p_exclusive}, {games_per_point} games/point)",
        x_label="vertices",
        y_label="P(quantum advantage)",
    )
    figure.add(f"p={p_exclusive}", [float(n) for n in sizes], probabilities)
    body = format_figure(figure) + "\n\n" + report.summary()
    print_block("Fig 3 — vertex-count scaling", body)

    assert probabilities[-1] >= probabilities[0], (
        "advantage probability should not shrink with more vertices"
    )

    import numpy as np

    kernel_rng = np.random.default_rng(13)
    benchmark(
        lambda: advantage_probability(4, 0.5, 2, kernel_rng)
    )
