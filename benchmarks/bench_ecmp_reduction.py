"""§4.2 reproduction: the N-way-entanglement-is-useless reduction.

Paper claims: (1) by no-signaling, the joint statistics of the active
parties cannot depend on anything an inactive party does, so the
inactive party may WLOG measure first; (2) that measurement reduces the
shared state to a mixture of pairwise-entangled states; (3) for GHZ in
particular the active pair is left with *no* entanglement.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.ecmp import (
    CollisionGame,
    all_pair_statistics_invariant,
    decompose_after_c_measurement,
    ghz_pairwise_marginal_is_separable,
    ghz_strategy_value,
    joint_ab_distribution,
)
from repro.quantum import ghz_state, w_state
from repro.quantum.bases import computational_basis, hadamard_basis, rotation_basis


def bench_reduction_invariance(benchmark):
    bases = [
        computational_basis(1),
        hadamard_basis(),
        rotation_basis(0.37),
        rotation_basis(-0.9),
        rotation_basis(1.8),
    ]
    rows = []
    for name, state in (("GHZ(3)", ghz_state(3)), ("W(3)", w_state(3))):
        invariant = all_pair_statistics_invariant(state, bases)
        rows.append([name, len(bases), "yes" if invariant else "NO"])
        assert invariant, f"no-signaling invariance failed for {name}"

    parts = decompose_after_c_measurement(ghz_state(3), hadamard_basis())
    mixture_desc = ", ".join(f"p={p:.3f}" for p, _ in parts)
    body = format_table(
        ["state", "bases checked", "A-B stats invariant under C"],
        rows,
        title="§4.2 reduction: inactive party cannot influence active pair",
    )
    body += (
        f"\nC's Hadamard measurement decomposes GHZ into bipartite mixture: "
        f"[{mixture_desc}]"
        f"\nGHZ pairwise marginal separable: "
        f"{ghz_pairwise_marginal_is_separable()}"
    )
    print_block("§4.2 — no-signaling reduction", body)
    assert ghz_pairwise_marginal_is_separable()

    benchmark(
        lambda: joint_ab_distribution(
            ghz_state(3),
            hadamard_basis(),
            rotation_basis(0.37),
            basis_c=rotation_basis(1.1),
        )
    )


def bench_nway_vs_mway_collision(benchmark):
    """Collision probabilities: 3-way GHZ strategies are no better than
    classical shared randomness (and typically worse)."""
    game = CollisionGame(3, 2, 2)
    classical = game.classical_value()
    random_value = game.random_strategy_value()

    rng = np.random.default_rng(1)
    trials = scaled(200)
    best_ghz = -np.inf
    for _ in range(trials):
        bases = [rotation_basis(rng.uniform(0, np.pi)) for _ in range(3)]
        best_ghz = max(best_ghz, ghz_strategy_value(game, bases))

    rows = [
        ["independent random paths", random_value],
        ["best classical (shared randomness)", classical],
        [f"best GHZ strategy ({trials} random basis triples)", best_ghz],
    ]
    body = format_table(
        ["strategy", "win probability"],
        rows,
        title="Collision game (3 switches, 2 active, 2 paths): "
        "win = active pair picks distinct paths",
        float_format="{:.6f}",
    )
    body += "\npaper: global entanglement offers no advantage over M-way"
    print_block("§4.2 — N-way vs M-way entanglement", body)

    assert best_ghz <= classical + 1e-9

    benchmark(
        lambda: ghz_strategy_value(
            game, [rotation_basis(0.1), rotation_basis(0.9), rotation_basis(2.0)]
        )
    )
