"""§3/§5 tooling benches: certification sample sizes, tomography, and
entanglement supply.

Three operational questions a deployment must answer:

1. How many pairs certify the advantage? (calibration)
2. Can we verify the delivered state? (tomography)
3. Is a live pair there when a request lands? (supply scheduling)
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.hardware import (
    analytic_pair_availability,
    effective_win_probability,
    pairs_needed_to_certify,
    simulate_pair_availability,
)
from repro.games.chsh import CHSH_QUANTUM_VALUE
from repro.quantum import bell_pair, tomography, werner_state


def bench_certification_sample_sizes(benchmark):
    rows = []
    for fidelity in (1.0, 0.95, 0.9, 0.85, 0.8):
        pairs = pairs_needed_to_certify(fidelity)
        rows.append([fidelity, pairs, f"{pairs / 1e6 * 1e3:.3f} ms"])
    body = format_table(
        ["Werner fidelity", "pairs for 3-sigma certification",
         "time @ 1M pairs/s"],
        rows,
        title="Advantage certification cost",
        float_format="{:.2f}",
    )
    body += "\ncertification is milliseconds even for marginal hardware"
    print_block("§3 — certification sample sizes", body)

    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes)  # worse hardware needs more pairs

    benchmark(lambda: pairs_needed_to_certify(0.9))


def bench_tomography_recovery(benchmark):
    shots = scaled(20_000)
    rows = []
    for true_fidelity in (1.0, 0.9, 0.8):
        rng = np.random.default_rng(11)
        reconstructed = tomography(werner_state(true_fidelity), shots, rng)
        estimated = reconstructed.fidelity(bell_pair())
        rows.append([true_fidelity, estimated, abs(estimated - true_fidelity)])
        assert abs(estimated - true_fidelity) < 0.05
    body = format_table(
        ["true Bell fidelity", "tomography estimate", "absolute error"],
        rows,
        title=f"State tomography, {shots} shots per Pauli observable",
        float_format="{:.4f}",
    )
    print_block("§3 — tomography verification", body)

    rng = np.random.default_rng(12)
    benchmark.pedantic(
        lambda: tomography(werner_state(0.9), 500, rng),
        rounds=3,
        iterations=1,
    )


def bench_pair_supply(benchmark):
    requests = scaled(20_000)
    configs = [
        ("fast source (1M pairs/s, 100us window)", 1e6, 1e4, 100e-6),
        ("slow source (10k pairs/s, 100us window)", 1e4, 1e4, 100e-6),
        ("starved (1k pairs/s, 100us window)", 1e3, 1e4, 100e-6),
        ("long memory (10k pairs/s, 1ms window)", 1e4, 1e4, 1e-3),
    ]
    rows = []
    for label, pair_rate, request_rate, window in configs:
        simulated = simulate_pair_availability(
            pair_rate, request_rate, window,
            horizon_requests=requests, seed=3,
        )
        analytic = analytic_pair_availability(pair_rate, request_rate, window)
        effective = effective_win_probability(simulated, CHSH_QUANTUM_VALUE)
        rows.append([label, simulated, analytic, effective])
    body = format_table(
        ["configuration", "availability (sim)", "availability (bound)",
         "effective CHSH win"],
        rows,
        title=f"Entanglement supply under 10k requests/s "
        f"({requests} simulated requests)",
        float_format="{:.4f}",
    )
    body += (
        "\nan effective win rate below 0.75 never happens — starved"
        "\ndecisions fall back to the classical strategy, not below it"
    )
    print_block("§3 — entanglement supply scheduling", body)

    for row in rows:
        assert 0.75 - 1e-9 <= row[3] <= CHSH_QUANTUM_VALUE + 1e-9
    # The fast source keeps nearly every decision quantum.
    assert rows[0][1] > 0.95

    benchmark(
        lambda: simulate_pair_availability(
            1e4, 1e4, 1e-4, horizon_requests=2000, seed=1
        )
    )
