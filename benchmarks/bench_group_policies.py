"""Group policies: GHZ k-party groups vs Bell pairs vs classical groups.

The §4.2 probe from the load-balancing side. Fleet sizes, group sizes,
timesteps, and the load grid come from the shared ``SCALE_LADDER``
(``group_*`` keys), so the smoke tier in CI and the paper tier in docs
name the same points. For each group size ``k`` the bench sweeps four
policies over the load grid through the chunked streaming engine:

- classical random (the paper's baseline),
- quantum CHSH pairs (the paper's policy — disjoint Bell pairs),
- GHZ groups of ``k`` (perfect Mermin strategy on shared GHZ states),
- classical groups of ``k`` (best deterministic Mermin tables, same
  grouping and shared-randomness server draws).

The headline table reports the knee load per policy (first load whose
mean queue crosses 5) plus per-load mean queue lengths; the trajectory
JSON (``BENCH_groups.json``, override via ``REPRO_BENCH_GROUPS_JSON``)
records every point for trend tracking. CI uploads it next to the other
BENCH artifacts.

Gate: at non-smoke tiers the GHZ-group policy must not queue worse than
the classical-group policy at the top load for any swept ``k`` — the
parity-coordination payoff (even-parity joint outputs eliminate the
worst splits) must survive the full queueing pipeline, not just the
game-value table.
"""

from __future__ import annotations

import json
import os

import numpy as np

from benchmarks._common import (
    ladder,
    print_block,
    scale_tier,
    sweep_cache,
    sweep_jobs,
)
from repro.analysis import format_table
from repro.backend import resolve_backend_name
from repro.lb import (
    CHSHPairedAssignment,
    ClassicalGroupAssignment,
    GHZGroupAssignment,
    RandomAssignment,
    knee_load,
    sweep_load,
)

SEED = 11


def _sweep(factory, *, n, loads, timesteps, policy_kwargs=None):
    points = sweep_load(
        factory,
        num_balancers=n,
        loads=loads,
        timesteps=timesteps,
        seed=SEED,
        jobs=sweep_jobs(),
        cache=sweep_cache(),
        policy_kwargs=policy_kwargs,
    )
    return points


def bench_group_policies(benchmark):
    tier = scale_tier()
    n = ladder("group_balancers")
    timesteps = ladder("group_timesteps")
    sizes = ladder("group_sizes")
    loads = ladder("group_loads")

    trajectory = {
        "benchmark": "group_policies",
        "tier": tier,
        "backend": resolve_backend_name(),
        "num_balancers": n,
        "timesteps": timesteps,
        "seed": SEED,
        "group_sizes": list(sizes),
        "loads": list(loads),
        "series": [],
    }

    # The pair-based rows are group-size independent; run them once.
    baselines = [
        ("classical random", RandomAssignment, None),
        ("quantum CHSH pairs", CHSHPairedAssignment, None),
    ]
    rows = []
    queues_by_name = {}
    for name, factory, kwargs in baselines:
        points = _sweep(
            factory, n=n, loads=loads, timesteps=timesteps, policy_kwargs=kwargs
        )
        queues = [p.result.mean_queue_length for p in points]
        queues_by_name[name] = queues
        rows.append([name, knee_load(points), *queues])
        trajectory["series"].append(
            {
                "policy": name,
                "group_size": None,
                "knee_load": knee_load(points),
                "loads": [p.load for p in points],
                "mean_queue_lengths": queues,
            }
        )

    for k in sizes:
        for name, factory in (
            (f"GHZ groups (k={k})", GHZGroupAssignment),
            (f"classical groups (k={k})", ClassicalGroupAssignment),
        ):
            points = _sweep(
                factory,
                n=n,
                loads=loads,
                timesteps=timesteps,
                policy_kwargs={"group_size": k},
            )
            queues = [p.result.mean_queue_length for p in points]
            queues_by_name[name] = queues
            rows.append([name, knee_load(points), *queues])
            trajectory["series"].append(
                {
                    "policy": name,
                    "group_size": k,
                    "knee_load": knee_load(points),
                    "loads": [p.load for p in points],
                    "mean_queue_lengths": queues,
                }
            )

    body = format_table(
        ["policy", "knee", *(f"q@{load:g}" for load in loads)],
        rows,
        float_format="{:.3f}",
    )
    body += (
        f"\n\nN={n} balancers, {timesteps} steps, seed {SEED}, tier "
        f"'{tier}'; q@L = mean queue length at load L, knee = first "
        "load with q >= 5"
    )
    print_block("Group policies — GHZ groups vs Bell pairs vs classical", body)

    out_path = os.environ.get("REPRO_BENCH_GROUPS_JSON", "BENCH_groups.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    for queues in queues_by_name.values():
        assert all(q >= 0.0 for q in queues), "negative queue length"
    if tier != "smoke":
        for k in sizes:
            ghz_top = queues_by_name[f"GHZ groups (k={k})"][-1]
            classical_top = queues_by_name[f"classical groups (k={k})"][-1]
            assert ghz_top <= classical_top * 1.05, (
                f"GHZ groups (k={k}) queued {ghz_top:.2f} at the top load "
                f"vs classical groups' {classical_top:.2f}"
            )

    smallest = sizes[0]
    policy = GHZGroupAssignment(
        max(2 * smallest, 8), max(smallest, 4), group_size=smallest
    )
    tasks = np.random.default_rng(0).integers(
        0, 2, size=(200, policy.num_balancers)
    )
    benchmark.pedantic(
        lambda: policy.assign_batch(tasks, np.random.default_rng(1)),
        rounds=3,
        iterations=1,
    )
