"""§4.1 claim: XOR games "have also been extended to more than two
players, corresponding to scenarios with more than two parties (here,
load balancers), where the advantage is larger than in the two-party
case" [12, 31].

Regenerates the Mermin-game value table: the classical value decays as
``1/2 + 2^(-ceil(n/2))`` while a GHZ state wins with certainty, so the
multipartite advantage grows toward the maximal 1/2 gap.
"""

from __future__ import annotations

from benchmarks._common import print_block
from repro.analysis import format_table
from repro.games import (
    CHSH_QUANTUM_VALUE,
    mermin_classical_value,
    mermin_game,
    mermin_optimal_strategy,
)


def bench_mermin_advantage_growth(benchmark):
    rows = []
    gaps = []
    for n in (3, 4, 5, 6):
        game = mermin_game(n)
        classical_bf = game.classical_value()
        classical_formula = mermin_classical_value(n)
        quantum = game.quantum_value_of_strategy(mermin_optimal_strategy(n))
        gap = quantum - classical_bf
        gaps.append(gap)
        rows.append([n, classical_bf, classical_formula, quantum, gap])

    chsh_gap = CHSH_QUANTUM_VALUE - 0.75
    body = format_table(
        ["players", "classical (brute force)", "classical (formula)",
         "GHZ quantum", "advantage"],
        rows,
        title="Mermin parity games: multipartite advantage",
        float_format="{:.6f}",
    )
    body += (
        f"\ntwo-party CHSH advantage for reference: {chsh_gap:.6f}; the "
        "3-player game already beats it and the gap grows with n"
    )
    print_block("§4.1 — multiplayer XOR-game advantage", body)

    assert all(g >= gaps[0] - 1e-12 for g in gaps)
    assert gaps[0] > chsh_gap  # 0.25 vs ~0.1036
    assert gaps[-1] >= gaps[0]

    game5 = mermin_game(5)
    benchmark(game5.classical_value)
