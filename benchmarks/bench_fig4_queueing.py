"""Fig 4 reproduction: average queue length vs load for classical random
and quantum (CHSH-paired) load balancing.

Paper claims: "the knee point — where queue length begins to increase
rapidly — occurs later in the quantum version"; N = 100 load balancers;
results depend primarily on the ratio N/M.

Sweeps execute through :class:`repro.exec.SweepRunner` (``REPRO_JOBS``
workers, on-disk result cache), with per-sweep runner metrics appended
to the result block.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled, sweep_cache, sweep_jobs
from repro.analysis import FigureData, format_figure, format_table
from repro.lb import (
    CHSHPairedAssignment,
    ClassicalPairedAssignment,
    RandomAssignment,
    knee_load,
    sweep_load_detailed,
)

LOADS = (0.5, 0.75, 1.0, 1.1, 1.25, 1.5, 1.75, 2.0)


def bench_fig4_queue_length_curve(benchmark):
    num_balancers = 100
    timesteps = scaled(800, 240)
    jobs, cache = sweep_jobs(), sweep_cache()
    sweeps = {}
    reports = {}
    for name, factory in (
        ("classical random", RandomAssignment),
        ("classical paired", ClassicalPairedAssignment),
        ("quantum CHSH", CHSHPairedAssignment),
    ):
        sweeps[name], reports[name] = sweep_load_detailed(
            factory,
            num_balancers=num_balancers,
            loads=LOADS,
            timesteps=timesteps,
            seed=3,
            jobs=jobs,
            cache=cache,
        )

    figure = FigureData(
        title=f"Fig 4: N={num_balancers}, {timesteps} steps, "
        "avg queue length vs load N/M",
        x_label="load N/M",
        y_label="mean queue length",
    )
    for name, points in sweeps.items():
        figure.add(
            name,
            [p.load for p in points],
            [p.result.mean_queue_length for p in points],
        )
    body = format_figure(figure)

    knees = [
        [name, knee_load(points, queue_threshold=10.0)]
        for name, points in sweeps.items()
    ]
    body += "\n\n" + format_table(
        ["policy", "knee load (first queue >= 10)"],
        knees,
        float_format="{:.2f}",
    )
    body += "\n\n" + "\n".join(r.summary() for r in reports.values())
    print_block("Fig 4 — quantum load balancing shifts the knee", body)

    classical_knee = knee_load(sweeps["classical random"], queue_threshold=10.0)
    quantum_knee = knee_load(sweeps["quantum CHSH"], queue_threshold=10.0)
    assert quantum_knee >= classical_knee, "paper: knee occurs later for quantum"

    # In the knee region the quantum queue should be clearly shorter.
    classical_at_knee = {
        round(p.load, 2): p.result.mean_queue_length
        for p in sweeps["classical random"]
    }
    quantum_at_knee = {
        round(p.load, 2): p.result.mean_queue_length
        for p in sweeps["quantum CHSH"]
    }
    assert quantum_at_knee[1.25] < classical_at_knee[1.25] * 0.85

    # Timed kernel: a short simulation run at the knee load.
    from repro.lb import run_timestep_simulation

    policy = CHSHPairedAssignment(40, 32)
    benchmark.pedantic(
        lambda: run_timestep_simulation(policy, timesteps=100, seed=1),
        rounds=3,
        iterations=1,
    )


def bench_fig4_queueing_delay(benchmark):
    """Same experiment through the delay lens (the Fig 4 caption reads
    'average queuing delay')."""
    num_balancers = 100
    timesteps = scaled(800, 240)
    jobs, cache = sweep_jobs(), sweep_cache()
    random_points, random_report = sweep_load_detailed(
        RandomAssignment,
        num_balancers=num_balancers,
        loads=LOADS,
        timesteps=timesteps,
        seed=5,
        jobs=jobs,
        cache=cache,
    )
    quantum_points, quantum_report = sweep_load_detailed(
        CHSHPairedAssignment,
        num_balancers=num_balancers,
        loads=LOADS,
        timesteps=timesteps,
        seed=5,
        jobs=jobs,
        cache=cache,
    )
    figure = FigureData(
        title=f"Fig 4 (delay form): N={num_balancers}, {timesteps} steps",
        x_label="load N/M",
        y_label="mean queueing delay (steps)",
    )
    figure.add(
        "classical random",
        [p.load for p in random_points],
        [p.result.mean_queueing_delay for p in random_points],
    )
    figure.add(
        "quantum CHSH",
        [p.load for p in quantum_points],
        [p.result.mean_queueing_delay for p in quantum_points],
    )
    body = format_figure(figure)
    body += "\n\n" + random_report.summary() + "\n" + quantum_report.summary()
    print_block("Fig 4 — queueing delay", body)

    by_load_random = {round(p.load, 2): p for p in random_points}
    by_load_quantum = {round(p.load, 2): p for p in quantum_points}
    assert (
        by_load_quantum[1.25].result.mean_queueing_delay
        < by_load_random[1.25].result.mean_queueing_delay
    )

    from repro.lb import run_timestep_simulation

    policy = RandomAssignment(40, 32)
    benchmark.pedantic(
        lambda: run_timestep_simulation(policy, timesteps=100, seed=1),
        rounds=3,
        iterations=1,
    )
