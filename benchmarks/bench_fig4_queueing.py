"""Fig 4 reproduction: average queue length vs load for classical random
and quantum (CHSH-paired) load balancing.

Paper claims: "the knee point — where queue length begins to increase
rapidly — occurs later in the quantum version"; N = 100 load balancers;
results depend primarily on the ratio N/M.
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import FigureData, format_figure, format_table
from repro.lb import (
    CHSHPairedAssignment,
    ClassicalPairedAssignment,
    RandomAssignment,
    knee_load,
    sweep_load,
)

LOADS = (0.5, 0.75, 1.0, 1.1, 1.25, 1.5, 1.75, 2.0)


def bench_fig4_queue_length_curve(benchmark):
    num_balancers = 100
    timesteps = scaled(800)
    sweeps = {
        "classical random": sweep_load(
            RandomAssignment,
            num_balancers=num_balancers,
            loads=LOADS,
            timesteps=timesteps,
            seed=3,
        ),
        "classical paired": sweep_load(
            ClassicalPairedAssignment,
            num_balancers=num_balancers,
            loads=LOADS,
            timesteps=timesteps,
            seed=3,
        ),
        "quantum CHSH": sweep_load(
            CHSHPairedAssignment,
            num_balancers=num_balancers,
            loads=LOADS,
            timesteps=timesteps,
            seed=3,
        ),
    }

    figure = FigureData(
        title=f"Fig 4: N={num_balancers}, {timesteps} steps, "
        "avg queue length vs load N/M",
        x_label="load N/M",
        y_label="mean queue length",
    )
    for name, points in sweeps.items():
        figure.add(
            name,
            [p.load for p in points],
            [p.result.mean_queue_length for p in points],
        )
    body = format_figure(figure)

    knees = [
        [name, knee_load(points, queue_threshold=10.0)]
        for name, points in sweeps.items()
    ]
    body += "\n\n" + format_table(
        ["policy", "knee load (first queue >= 10)"],
        knees,
        float_format="{:.2f}",
    )
    print_block("Fig 4 — quantum load balancing shifts the knee", body)

    classical_knee = knee_load(sweeps["classical random"], queue_threshold=10.0)
    quantum_knee = knee_load(sweeps["quantum CHSH"], queue_threshold=10.0)
    assert quantum_knee >= classical_knee, "paper: knee occurs later for quantum"

    # In the knee region the quantum queue should be clearly shorter.
    classical_at_knee = {
        round(p.load, 2): p.result.mean_queue_length
        for p in sweeps["classical random"]
    }
    quantum_at_knee = {
        round(p.load, 2): p.result.mean_queue_length
        for p in sweeps["quantum CHSH"]
    }
    assert quantum_at_knee[1.25] < classical_at_knee[1.25] * 0.85

    # Timed kernel: a short simulation run at the knee load.
    from repro.lb import run_timestep_simulation

    policy = CHSHPairedAssignment(40, 32)
    benchmark.pedantic(
        lambda: run_timestep_simulation(policy, timesteps=100, seed=1),
        rounds=3,
        iterations=1,
    )


def bench_fig4_queueing_delay(benchmark):
    """Same experiment through the delay lens (the Fig 4 caption reads
    'average queuing delay')."""
    num_balancers = 100
    timesteps = scaled(800)
    random_points = sweep_load(
        RandomAssignment,
        num_balancers=num_balancers,
        loads=LOADS,
        timesteps=timesteps,
        seed=5,
    )
    quantum_points = sweep_load(
        CHSHPairedAssignment,
        num_balancers=num_balancers,
        loads=LOADS,
        timesteps=timesteps,
        seed=5,
    )
    figure = FigureData(
        title=f"Fig 4 (delay form): N={num_balancers}, {timesteps} steps",
        x_label="load N/M",
        y_label="mean queueing delay (steps)",
    )
    figure.add(
        "classical random",
        [p.load for p in random_points],
        [p.result.mean_queueing_delay for p in random_points],
    )
    figure.add(
        "quantum CHSH",
        [p.load for p in quantum_points],
        [p.result.mean_queueing_delay for p in quantum_points],
    )
    print_block("Fig 4 — queueing delay", format_figure(figure))

    by_load_random = {round(p.load, 2): p for p in random_points}
    by_load_quantum = {round(p.load, 2): p for p in quantum_points}
    assert (
        by_load_quantum[1.25].result.mean_queueing_delay
        < by_load_random[1.25].result.mean_queueing_delay
    )

    from repro.lb import run_timestep_simulation

    policy = RandomAssignment(40, 32)
    benchmark.pedantic(
        lambda: run_timestep_simulation(policy, timesteps=100, seed=1),
        rounds=3,
        iterations=1,
    )
