"""Fig 4 under hardware faults: knee position vs fidelity and availability.

The paper's advantage claim assumes perfect Bell pairs delivered for
every decision. This benchmark degrades both axes through the fault
plane (:mod:`repro.lb.degradation`) and tracks where the Fig 4 knee
lands:

- **Fidelity sweep** — Werner pairs at decreasing fidelity, including
  rows straddling the ``v > 1/sqrt(2)`` advantage threshold
  (``required_fidelity_for_advantage()``, F ~= 0.7803): the exact CHSH
  win probability crosses 3/4 between those rows.
- **Availability sweep** — pairs delivered for only a fraction of
  decisions, the rest falling back to the best classical paired
  strategy; includes one correlated-outage row at the same mean
  availability, which hurts more than i.i.d. loss.

Sweeps run through :class:`repro.exec.SweepRunner` (``REPRO_JOBS``,
result cache); degradation observability (realized quantum decision
rate, effective win probability) comes from the runs' attached
:class:`~repro.lb.degradation.DegradationReport`.

A trajectory file (``BENCH_degradation.json``, override via
``REPRO_BENCH_DEGRADATION_JSON``) records both tables for trend
tracking; CI uploads it alongside ``BENCH_engine.json``.
"""

from __future__ import annotations

import json
import os

from benchmarks._common import print_block, scaled, sweep_cache, sweep_jobs
from repro.analysis import format_table
from repro.hardware import required_fidelity_for_advantage
from repro.lb import knee_load, make_degraded_chsh, sweep_load_detailed

LOADS = (0.5, 0.75, 0.9, 1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.35, 1.5)
KNEE_THRESHOLD = 5.0


def _degraded_sweep(num_balancers, timesteps, jobs, cache, **policy_kwargs):
    points, report = sweep_load_detailed(
        make_degraded_chsh,
        num_balancers=num_balancers,
        loads=LOADS,
        timesteps=timesteps,
        seed=3,
        jobs=jobs,
        cache=cache,
        policy_kwargs=policy_kwargs,
    )
    return points, report


def _row(points, label, value):
    # Every point shares the fault model; read observability from the
    # highest-load point (it executed the most decisions).
    degradation = points[-1].result.degradation
    return {
        "label": label,
        "value": value,
        "knee_load": knee_load(points, queue_threshold=KNEE_THRESHOLD),
        "quantum_win": degradation.quantum_win_probability,
        "quantum_rate": degradation.quantum_decision_rate,
        "effective_win": degradation.effective_win_probability,
        "mean_queue": {
            f"{p.load:.2f}": p.result.mean_queue_length for p in points
        },
    }


def bench_fig4_degradation(benchmark):
    num_balancers = 100
    timesteps = scaled(800, 240)
    jobs, cache = sweep_jobs(), sweep_cache()
    threshold = required_fidelity_for_advantage()

    fidelity_grid = [
        1.0,
        0.95,
        0.9,
        round(threshold + 0.005, 4),
        round(threshold - 0.005, 4),
        0.7,
    ]
    fidelity_rows = []
    runner_summaries = []
    for fidelity in fidelity_grid:
        points, report = _degraded_sweep(
            num_balancers, timesteps, jobs, cache, fidelity=fidelity
        )
        fidelity_rows.append(_row(points, "fidelity", fidelity))
        runner_summaries.append(report.summary())

    availability_grid = [1.0, 0.8, 0.5, 0.2, 0.0]
    availability_rows = []
    for availability in availability_grid:
        points, report = _degraded_sweep(
            num_balancers, timesteps, jobs, cache, availability=availability
        )
        availability_rows.append(_row(points, "availability", availability))
        runner_summaries.append(report.summary())
    burst_points, burst_report = _degraded_sweep(
        num_balancers,
        timesteps,
        jobs,
        cache,
        availability=0.5,
        mean_outage_steps=25.0,
    )
    burst_row = _row(burst_points, "availability (bursty)", 0.5)
    runner_summaries.append(burst_report.summary())

    def queue_at(row, load):
        return row["mean_queue"][f"{load:.2f}"]

    body = format_table(
        ["fidelity", "P(win|quantum)", "knee load", "queue @ 1.25"],
        [
            [r["value"], r["quantum_win"], r["knee_load"], queue_at(r, 1.25)]
            for r in fidelity_rows
        ],
        title=f"Knee vs Werner fidelity (availability 1.0, threshold "
        f"F*={threshold:.4f}, knee = first queue >= {KNEE_THRESHOLD:g})",
        float_format="{:.4f}",
    )
    body += "\n\n" + format_table(
        [
            "availability",
            "quantum rate",
            "P(win) effective",
            "knee load",
            "queue @ 1.25",
        ],
        [
            [
                r["value"],
                r["quantum_rate"],
                r["effective_win"],
                r["knee_load"],
                queue_at(r, 1.25),
            ]
            for r in availability_rows + [burst_row]
        ],
        title="Knee vs pair availability (fidelity 1.0, classical "
        "fallback; last row: correlated 25-step outage bursts)",
        float_format="{:.4f}",
    )
    body += "\n\n" + "\n".join(runner_summaries)
    print_block("Fig 4 under hardware faults — knee vs fidelity and "
                "availability", body)

    out_path = os.environ.get(
        "REPRO_BENCH_DEGRADATION_JSON", "BENCH_degradation.json"
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "benchmark": "fig4_degradation",
                "timesteps": timesteps,
                "loads": list(LOADS),
                "knee_threshold": KNEE_THRESHOLD,
                "advantage_fidelity_threshold": threshold,
                "fidelity_rows": fidelity_rows,
                "availability_rows": availability_rows + [burst_row],
            },
            handle,
            indent=2,
        )
        handle.write("\n")

    # The Werner threshold is exact, whatever the simulation scale: the
    # straddling rows must bracket the classical win probability.
    above = next(r for r in fidelity_rows if r["value"] > threshold)
    below = next(r for r in fidelity_rows if r["value"] < threshold)
    assert above["quantum_win"] > 0.75 > below["quantum_win"], (
        "Werner advantage threshold did not cross 3/4 where "
        "required_fidelity_for_advantage says it must"
    )
    # Dead supply falls back to the classical paired strategy exactly.
    dead = availability_rows[-1]
    assert dead["quantum_rate"] == 0.0
    assert abs(dead["effective_win"] - 0.75) < 1e-9

    # Degradation can only move the knee earlier (or leave it in the
    # same load bin — the sweep grid is coarse).
    assert fidelity_rows[0]["knee_load"] >= fidelity_rows[-1]["knee_load"], (
        "knee moved later as fidelity dropped"
    )
    assert (
        availability_rows[0]["knee_load"] >= availability_rows[-1]["knee_load"]
    ), "knee moved later as availability dropped"
    if timesteps >= 800:
        # At full scale the post-knee queue height is strictly monotone
        # in both fault axes (smoke runs are too noisy to require this).
        fidelity_queues = [queue_at(r, 1.25) for r in fidelity_rows]
        assert fidelity_queues == sorted(fidelity_queues), (
            "queue at load 1.25 not monotone in fidelity"
        )
        availability_queues = [queue_at(r, 1.25) for r in availability_rows]
        assert availability_queues == sorted(availability_queues), (
            "queue at load 1.25 not monotone in availability"
        )

    policy_kwargs = {"fidelity": 0.9, "availability": 0.8}
    benchmark.pedantic(
        lambda: _degraded_sweep(
            num_balancers, min(timesteps, 300), jobs, cache, **policy_kwargs
        ),
        rounds=1,
        iterations=1,
    )
