"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper (see
DESIGN.md's per-experiment index) and prints it, so the
``pytest benchmarks/ --benchmark-only`` output is the reproduction
record. ``REPRO_BENCH_SCALE`` (default 1.0) scales sample counts: set it
above 1 for tighter statistics, below 1 for a faster smoke run.

Result blocks are written to the *real* stdout (bypassing pytest's
capture, so they appear without ``-s``) and appended to the report file
named by ``REPRO_BENCH_REPORT`` (default ``bench_report.txt`` in the
working directory). Appends take an ``fcntl`` advisory lock around a
single buffered write, so concurrent benchmark processes (e.g.
``REPRO_JOBS``-parallel sweeps, or several pytest invocations sharing a
report) never interleave partial blocks.

Sweep-style benchmarks route execution through
:class:`repro.exec.SweepRunner`; :func:`sweep_jobs` and
:func:`sweep_cache` pick up the worker count (``REPRO_JOBS``) and
result-cache toggle (``REPRO_SWEEP_CACHE``, default on) from the
environment.
"""

from __future__ import annotations

import os
import sys

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "scaled",
    "print_block",
    "sweep_jobs",
    "sweep_cache",
    "SCALE_LADDER",
    "scale_tier",
    "ladder",
]


def scaled(base: int, minimum: int = 1) -> int:
    """Scale a sample count by ``REPRO_BENCH_SCALE``."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(minimum, int(round(base * factor)))


#: The shared scale ladder for the two hot-kernel benchmarks
#: (``bench_engine_speed`` and ``bench_fig3_batched_cascade``). Each
#: tier names one consistent set of sizes so "the production point" is
#: the same thing in CI, in the docs, and in the trajectory JSONs:
#:
#: - ``smoke`` — CI perf-smoke sizes; seconds per benchmark.
#: - ``paper`` — the default: paper-scale Fig 3/Fig 4 points plus the
#:   large streaming point at a bounded step count (~1 min).
#: - ``production`` — the ISSUE 7 scale-up: N=10^4 balancers x 10^6
#:   timesteps streamed through the chunked engine (~tens of minutes on
#:   the NumPy backend; minutes under numba).
SCALE_LADDER = {
    "smoke": {
        "stream_balancers": 1_000,
        "stream_servers": 1_250,
        "stream_timesteps": 2_000,
        "fig3_sizes": (6,),
        "fig3_games": 60,
        "group_balancers": 48,
        "group_timesteps": 400,
        "group_sizes": (3,),
        "group_loads": (0.9, 1.2, 1.5),
        "nonlocal_restarts": 3,
        "nonlocal_iterations": 120,
        "nonlocal_cascade_games": 6,
    },
    "paper": {
        "stream_balancers": 10_000,
        "stream_servers": 12_500,
        "stream_timesteps": 20_000,
        "fig3_sizes": (6, 7, 8),
        "fig3_games": 420,
        "group_balancers": 240,
        "group_timesteps": 2_000,
        "group_sizes": (3, 4),
        "group_loads": (0.8, 1.0, 1.2, 1.5),
        "nonlocal_restarts": 5,
        "nonlocal_iterations": 200,
        "nonlocal_cascade_games": 24,
    },
    "production": {
        "stream_balancers": 10_000,
        "stream_servers": 12_500,
        "stream_timesteps": 1_000_000,
        "fig3_sizes": (6, 7, 8),
        "fig3_games": 420,
        "group_balancers": 960,
        "group_timesteps": 10_000,
        "group_sizes": (3, 4, 5),
        "group_loads": (0.8, 1.0, 1.2, 1.5),
        "nonlocal_restarts": 8,
        "nonlocal_iterations": 300,
        "nonlocal_cascade_games": 96,
    },
}


def scale_tier() -> str:
    """The active rung of :data:`SCALE_LADDER`.

    ``REPRO_BENCH_TIER`` picks a rung by name; otherwise the tier
    follows ``REPRO_BENCH_SCALE`` (sub-1 smoke runs get the ``smoke``
    rung, everything else ``paper``). ``production`` is never implied —
    it must be requested explicitly.
    """
    tier = os.environ.get("REPRO_BENCH_TIER", "").strip().lower()
    if tier:
        if tier not in SCALE_LADDER:
            raise ValueError(
                f"REPRO_BENCH_TIER={tier!r} is not one of "
                f"{sorted(SCALE_LADDER)}"
            )
        return tier
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return "paper" if factor >= 1.0 else "smoke"


def ladder(key: str):
    """One named size from the active :data:`SCALE_LADDER` rung."""
    return SCALE_LADDER[scale_tier()][key]


def sweep_jobs() -> int:
    """Worker count for sweep benchmarks: ``REPRO_JOBS`` or CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def sweep_cache() -> bool:
    """Whether sweep benchmarks use the on-disk result cache.

    On by default; disable with ``REPRO_SWEEP_CACHE=0`` (the cache key
    covers configs, seeds, and the work function's own code, but not
    transitive imports — see ``repro.exec.cache``).
    """
    value = os.environ.get("REPRO_SWEEP_CACHE", "1").strip().lower()
    return value not in {"", "0", "false", "no", "off"}


def _append_report(path: str, block: str) -> None:
    """Append one block under an advisory lock, as a single write."""
    with open(path, "a", encoding="utf-8") as report:
        if fcntl is not None:
            fcntl.flock(report.fileno(), fcntl.LOCK_EX)
        try:
            report.write(block)
            report.flush()
        finally:
            if fcntl is not None:
                fcntl.flock(report.fileno(), fcntl.LOCK_UN)


def print_block(title: str, body: str) -> None:
    """Emit a delimited result block to the real stdout and the report file."""
    bar = "=" * 72
    block = f"\n{bar}\n{title}\n{bar}\n{body}\n"
    stream = getattr(sys, "__stdout__", None) or sys.stdout
    stream.write(block)
    stream.flush()
    report_path = os.environ.get("REPRO_BENCH_REPORT", "bench_report.txt")
    if report_path:
        _append_report(report_path, block)
