"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper (see
DESIGN.md's per-experiment index) and prints it, so the
``pytest benchmarks/ --benchmark-only`` output is the reproduction
record. ``REPRO_BENCH_SCALE`` (default 1.0) scales sample counts: set it
above 1 for tighter statistics, below 1 for a faster smoke run.

Result blocks are written to the *real* stdout (bypassing pytest's
capture, so they appear without ``-s``) and appended to the report file
named by ``REPRO_BENCH_REPORT`` (default ``bench_report.txt`` in the
working directory).
"""

from __future__ import annotations

import os
import sys

__all__ = ["scaled", "print_block"]


def scaled(base: int, minimum: int = 1) -> int:
    """Scale a sample count by ``REPRO_BENCH_SCALE``."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(minimum, int(round(base * factor)))


def print_block(title: str, body: str) -> None:
    """Emit a delimited result block to the real stdout and the report file."""
    bar = "=" * 72
    block = f"\n{bar}\n{title}\n{bar}\n{body}\n"
    stream = getattr(sys, "__stdout__", None) or sys.stdout
    stream.write(block)
    stream.flush()
    report_path = os.environ.get("REPRO_BENCH_REPORT", "bench_report.txt")
    if report_path:
        with open(report_path, "a", encoding="utf-8") as report:
            report.write(block)
