"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper (see
DESIGN.md's per-experiment index) and prints it, so the
``pytest benchmarks/ --benchmark-only`` output is the reproduction
record. ``REPRO_BENCH_SCALE`` (default 1.0) scales sample counts: set it
above 1 for tighter statistics, below 1 for a faster smoke run.

Result blocks are written to the *real* stdout (bypassing pytest's
capture, so they appear without ``-s``) and appended to the report file
named by ``REPRO_BENCH_REPORT`` (default ``bench_report.txt`` in the
working directory). Appends take an ``fcntl`` advisory lock around a
single buffered write, so concurrent benchmark processes (e.g.
``REPRO_JOBS``-parallel sweeps, or several pytest invocations sharing a
report) never interleave partial blocks.

Sweep-style benchmarks route execution through
:class:`repro.exec.SweepRunner`; :func:`sweep_jobs` and
:func:`sweep_cache` pick up the worker count (``REPRO_JOBS``) and
result-cache toggle (``REPRO_SWEEP_CACHE``, default on) from the
environment.
"""

from __future__ import annotations

import os
import sys

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["scaled", "print_block", "sweep_jobs", "sweep_cache"]


def scaled(base: int, minimum: int = 1) -> int:
    """Scale a sample count by ``REPRO_BENCH_SCALE``."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(minimum, int(round(base * factor)))


def sweep_jobs() -> int:
    """Worker count for sweep benchmarks: ``REPRO_JOBS`` or CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def sweep_cache() -> bool:
    """Whether sweep benchmarks use the on-disk result cache.

    On by default; disable with ``REPRO_SWEEP_CACHE=0`` (the cache key
    covers configs, seeds, and the work function's own code, but not
    transitive imports — see ``repro.exec.cache``).
    """
    value = os.environ.get("REPRO_SWEEP_CACHE", "1").strip().lower()
    return value not in {"", "0", "false", "no", "off"}


def _append_report(path: str, block: str) -> None:
    """Append one block under an advisory lock, as a single write."""
    with open(path, "a", encoding="utf-8") as report:
        if fcntl is not None:
            fcntl.flock(report.fileno(), fcntl.LOCK_EX)
        try:
            report.write(block)
            report.flush()
        finally:
            if fcntl is not None:
                fcntl.flock(report.fileno(), fcntl.LOCK_UN)


def print_block(title: str, body: str) -> None:
    """Emit a delimited result block to the real stdout and the report file."""
    bar = "=" * 72
    block = f"\n{bar}\n{title}\n{bar}\n{body}\n"
    stream = getattr(sys, "__stdout__", None) or sys.stdout
    stream.write(block)
    stream.flush()
    report_path = os.environ.get("REPRO_BENCH_REPORT", "bench_report.txt")
    if report_path:
        _append_report(report_path, block)
