"""Footnote 2 ablation: sensitivity of the Fig 4 advantage to the server
execution strategy.

The paper's footnote claims the advantage "is robust to other server
execution strategies". Our reproduction refines that: the advantage is
robust across disciplines that *reward colocation* (the paper's rule and
FIFO-with-batching behave comparably at their knees), but a fully serial
server — where two colocated type-C tasks gain nothing — erases and even
inverts the benefit, because CHSH pairs then deliberately concentrate
load. The boundary is part of the reproduction record (EXPERIMENTS.md).

Each discipline is evaluated near its own knee (their service capacities
differ, so a single load would compare an overloaded system to an idle
one).
"""

from __future__ import annotations

from benchmarks._common import print_block, scaled
from repro.analysis import format_table
from repro.lb import (
    CHSHPairedAssignment,
    RandomAssignment,
    run_timestep_simulation,
)

#: Load near each discipline's knee (capacity: paper ~4/3, fifo ~1.2,
#: serial = 1 task/step).
KNEE_LOADS = {"paper": 1.25, "fifo": 1.05, "serial": 0.85}


def bench_discipline_sensitivity(benchmark):
    num_balancers = 100
    timesteps = scaled(700)
    rows = []
    improvements = {}
    for discipline, load in sorted(KNEE_LOADS.items()):
        num_servers = round(num_balancers / load)
        classical = run_timestep_simulation(
            RandomAssignment(num_balancers, num_servers),
            timesteps=timesteps,
            seed=7,
            discipline=discipline,
        )
        quantum = run_timestep_simulation(
            CHSHPairedAssignment(num_balancers, num_servers),
            timesteps=timesteps,
            seed=7,
            discipline=discipline,
        )
        improvement = 1.0 - (
            quantum.mean_queue_length / max(classical.mean_queue_length, 1e-12)
        )
        improvements[discipline] = improvement
        rows.append(
            [
                discipline,
                load,
                classical.mean_queue_length,
                quantum.mean_queue_length,
                improvement,
            ]
        )

    body = format_table(
        [
            "discipline",
            "load N/M",
            "classical queue",
            "quantum queue",
            "improvement",
        ],
        rows,
        title=f"Quantum improvement near each discipline's knee "
        f"(N={num_balancers}, {timesteps} steps)",
    )
    body += (
        "\nfinding: the advantage needs a discipline that rewards "
        "colocation; a fully serial server inverts it (colocated pairs "
        "just queue behind each other)"
    )
    print_block("Ablation — server execution strategy", body)

    # The paper's discipline shows the headline advantage.
    assert improvements["paper"] > 0.05
    # FIFO (adjacent-C batching) keeps the advantage within noise of zero
    # or better; it must not collapse to the serial regime.
    assert improvements["fifo"] > -0.15
    # Serial service erases the colocation benefit: the inversion is the
    # documented boundary of footnote 2's claim in this model.
    assert improvements["serial"] < 0.05

    policy = RandomAssignment(50, 40)
    benchmark.pedantic(
        lambda: run_timestep_simulation(
            policy, timesteps=100, seed=1, discipline="fifo"
        ),
        rounds=3,
        iterations=1,
    )
